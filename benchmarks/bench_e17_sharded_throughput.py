"""E17: sharded pod service vs single engine on the E16 workload.

Routes the E16 store-traffic workload (many independent customer
sessions over one shared catalog) through a
:class:`~repro.pods.service.ShardedPodService` and compares it against
the single-engine :class:`~repro.pods.service.PodService` baseline.
Within one process sharding is pure routing -- the point of the record
is that the hash-routed path preserves single-engine throughput (ratio
~1.0) and per-session outputs exactly, so splitting the shards across
real processes is deployment, not redesign.

Run as a script to emit the ``BENCH_e17.json`` perf record::

    python benchmarks/bench_e17_sharded_throughput.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import build_friendly
from repro.commerce.workloads import SessionGenerator, simulate_concurrent_customers
from repro.pods import PodService, ShardedPodService

SEED = 7
PRODUCTS = 1000
STEPS_PER_SESSION = 8
FULL_SESSIONS = 1000
SHARDS = 4


def _measure(sessions: int, products: int, steps: int, shards: int):
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(products)
    report = simulate_concurrent_customers(
        transducer,
        catalog,
        sessions=sessions,
        steps_per_session=steps,
        seed=SEED,
        shards=shards,
    )
    assert report.total_steps == sessions * steps
    return report


def run_experiment(
    sessions: int = FULL_SESSIONS,
    products: int = PRODUCTS,
    steps: int = STEPS_PER_SESSION,
    shards: int = SHARDS,
) -> dict:
    """Measure single-engine and sharded runs; return the JSON record."""
    single = _measure(sessions, products, steps, shards=1)
    sharded = _measure(sessions, products, steps, shards=shards)
    ratio = (
        sharded.metrics["steps_per_second"]
        / single.metrics["steps_per_second"]
    )
    return {
        "experiment": "e17_sharded_throughput",
        "workload": {
            "transducer": "friendly",
            "catalog_products": products,
            "sessions": sessions,
            "steps_per_session": steps,
            "shards": shards,
            "seed": SEED,
        },
        "single_engine": single.metrics,
        "sharded": sharded.metrics,
        "steps_per_second": sharded.metrics["steps_per_second"],
        "sessions_per_second": sharded.metrics["sessions_per_second"],
        "sharded_vs_single_ratio": round(ratio, 3),
        "python": platform.python_version(),
    }


# -- pytest entry points ------------------------------------------------------


def test_e17_sharded_matches_single_engine():
    """Acceptance: 4 shards produce the E16 workload's exact outputs."""
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(100)
    scripts = {
        f"customer-{n:04d}": SessionGenerator(
            catalog, seed=SEED * 1_000_003 + n, supports_pending_bills=True
        ).session(6)
        for n in range(16)
    }

    single = PodService(transducer, catalog.as_database())
    sharded = ShardedPodService(transducer, catalog.as_database(), shards=4)
    for service in (single, sharded):
        for session_id in scripts:
            service.create_session(session_id)
        service.drive(scripts, round_robin=True)

    used_shards = set()
    for session_id in scripts:
        assert (
            list(sharded.session(session_id).log().entries)
            == list(single.session(session_id).log().entries)
        )
        used_shards.add(sharded.shard_for(session_id))
    assert len(used_shards) > 1, "workload should exercise several shards"
    assert sharded.metrics.steps_executed == single.metrics.steps_executed


def test_e17_throughput_smoke(benchmark):
    """Small sharded throughput measurement (CI smoke size)."""
    report = benchmark.pedantic(
        _measure,
        args=(40, 300, 6, SHARDS),
        iterations=1,
        rounds=3,
    )
    assert report.metrics["steps_per_second"] > 0
    assert report.shards == SHARDS


def test_e17_sharding_preserves_throughput():
    """Routing overhead stays bounded: sharded vs single-engine.

    The expected ratio is ~0.92 in-process, but this compares two
    near-equal wall-clock timings on shared CI runners, so the
    assertion only guards against a collapse (an accidentally
    quadratic routing path), not against ordinary runner noise.
    """
    record = run_experiment(sessions=200, products=300, steps=6)
    print(
        f"\nE17: single {record['single_engine']['steps_per_second']:.0f} "
        f"steps/s, sharded {record['sharded']['steps_per_second']:.0f} "
        f"steps/s, ratio {record['sharded_vs_single_ratio']:.2f}"
    )
    assert record["sharded_vs_single_ratio"] >= 0.3


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (100 sessions, 300 products)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--products", type=int, default=None)
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e17.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (100 if args.smoke else FULL_SESSIONS)
    )
    products = (
        args.products
        if args.products is not None
        else (300 if args.smoke else PRODUCTS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if products < 1:
        parser.error("--products must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    record = run_experiment(
        sessions=sessions, products=products, shards=args.shards
    )
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
