"""E12 / E13: error-free verification (Thm 4.4) and containment (Thm 4.6)."""

import pytest

from repro.datalog.parser import parse_program
from repro.errors import UndecidableError
from repro.logic.fol import Bottom
from repro.verify import (
    TsdiConjunct,
    TsdiSentence,
    errorfree_contains,
    holds_on_error_free_runs,
)


def _guarded(short, extra=""):
    return short.with_extra_rules(
        "error :- pay(X,Y), past-cancel(X);" + extra,
        extra_inputs={"cancel": 1},
        extra_outputs={"error": 0},
    )


def test_e12_enforced_property_verified(benchmark, short, catalog_db):
    guarded = _guarded(short)
    sentence = TsdiSentence.of(
        TsdiConjunct(
            parse_program("__h :- pay(X,Y), past-cancel(X)").rules[0].body,
            Bottom(),
        )
    )
    verdict = benchmark(holds_on_error_free_runs, guarded, sentence, catalog_db)
    assert verdict.holds
    print(f"\nrun bound used: k+1 with k=1 positive state literals; "
          f"domain={verdict.stats.domain_size}")


def test_e12_unenforced_property_refuted(benchmark, short, catalog_db):
    guarded = _guarded(short)
    sentence = TsdiSentence.of(TsdiConjunct.parse("order(X)", "available(X)"))
    verdict = benchmark(holds_on_error_free_runs, guarded, sentence, catalog_db)
    assert not verdict.holds
    assert verdict.counterexample_inputs is not None


def test_e12_undecidable_fragment_refused(benchmark, short, catalog_db):
    # Negative state literals in error rules put the question outside
    # Theorem 4.4 (Theorem 4.3 makes it undecidable); the library raises.
    guarded = short.with_extra_rules(
        "error :- pay(X,Y), NOT past-order(X);",
        extra_outputs={"error": 0},
    )
    sentence = TsdiSentence.of(TsdiConjunct.parse("order(X)", "available(X)"))

    def attempt():
        with pytest.raises(UndecidableError):
            holds_on_error_free_runs(guarded, sentence, catalog_db)
        return True

    assert benchmark(attempt)


def test_e13_errorfree_containment_positive(benchmark, short, catalog_db):
    lenient = _guarded(short)
    strict = _guarded(short, "error :- pay(X,Y), past-pay(X,Y);")
    verdict = benchmark(errorfree_contains, strict, lenient, catalog_db)
    assert verdict.contained


def test_e13_errorfree_containment_negative(benchmark, short, catalog_db):
    lenient = _guarded(short)
    strict = _guarded(short, "error :- pay(X,Y), past-pay(X,Y);")
    verdict = benchmark(errorfree_contains, lenient, strict, catalog_db)
    assert not verdict.contained
    assert verdict.firing_rule is not None
    print(f"\nseparating rule: {verdict.firing_rule}")
