"""E14: complexity-shape study of the BSR decision procedure.

The paper's complexity claims: NEXPTIME in general, Σᵖ₂ when the schema
is fixed (Lewis 1980).  The executable counterpart: grounding size (and
hence runtime) grows exponentially in the number of universal variables
per quantifier block and polynomially in the domain when the quantifier
structure is fixed.  The series below measure both axes plus the SAT
solver's contribution, and one ablation (structural grounding versus a
single pooled prefix) quantifies why per-conjunct expansion matters.
"""

import pytest

from repro.datalog.ast import Constant as C
from repro.datalog.ast import Variable as V
from repro.logic.bsr import decide_bsr
from repro.logic.fol import Exists, Forall, Implies, Not, Or, Rel, conjoin


def _chain_sentence(num_constants: int, universals: int):
    """p closed under a successor-ish relation, with many constants."""
    xs = tuple(V(f"x{i}") for i in range(universals))
    facts = [Rel("p", (C(f"c{i}"),)) for i in range(num_constants)]
    body = Implies(
        conjoin([Rel("p", (x,)) for x in xs]),
        Or(tuple(Rel("q", (x,)) for x in xs)),
    )
    return conjoin(facts + [Forall(xs, body)])


@pytest.mark.parametrize("universals", [1, 2, 3, 4])
def test_e14_exponential_in_universals(benchmark, universals):
    sentence = _chain_sentence(4, universals)
    result = benchmark(decide_bsr, sentence)
    assert result.satisfiable
    print(
        f"\nm={universals}: instantiations="
        f"{result.stats.universal_instantiations} "
        f"clauses={result.stats.cnf_clauses}"
    )


@pytest.mark.parametrize("constants", [2, 4, 8, 16])
def test_e14_polynomial_in_domain_fixed_schema(benchmark, constants):
    sentence = _chain_sentence(constants, 2)
    result = benchmark(decide_bsr, sentence)
    assert result.satisfiable
    print(
        f"\n|C|={constants}: instantiations="
        f"{result.stats.universal_instantiations} "
        f"clauses={result.stats.cnf_clauses}"
    )


@pytest.mark.parametrize("existentials", [1, 3, 6, 9])
def test_e14_domain_grows_with_existentials(benchmark, existentials):
    xs = tuple(V(f"e{i}") for i in range(existentials))
    distinct = []
    for i in range(existentials):
        for j in range(i + 1, existentials):
            from repro.logic.fol import Eq

            distinct.append(Not(Eq(xs[i], xs[j])))
    sentence = Exists(xs, conjoin([Rel("p", (x,)) for x in xs] + distinct))
    result = benchmark(decide_bsr, sentence)
    assert result.satisfiable
    assert result.stats.domain_size >= existentials
    print(f"\nk={existentials}: domain={result.stats.domain_size} "
          f"clauses={result.stats.cnf_clauses}")


def test_e14_unsat_forces_search(benchmark):
    # Pigeonhole-flavored BSR: 4 distinct constants, p injective into a
    # 3-element q-set -- unsatisfiable, so the solver must exhaust.
    x, y = V("x"), V("y")
    facts = [Rel("p", (C(f"c{i}"),)) for i in range(4)]
    holes = [Rel("q", (C(f"h{i}"),)) for i in range(3)]
    from repro.logic.fol import Eq

    only_holes = Forall(
        (x,),
        Implies(
            Rel("r", (x,)),
            Or(tuple(Eq(x, C(f"h{i}")) for i in range(3))),
        ),
    )
    # every c maps... keep it propositional-ish: assert r(c_i) for all i
    # and r has at most 3 members h0..h2 distinct from the c_i: UNSAT.
    members = [Rel("r", (C(f"c{i}"),)) for i in range(4)]
    not_holes = [
        Not(Eq(C(f"c{i}"), C(f"h{j}"))) for i in range(4) for j in range(3)
    ]
    del not_holes  # UNA makes distinct constants unequal already
    sentence = conjoin(facts + holes + members + [only_holes])
    result = benchmark(decide_bsr, sentence)
    assert not result.satisfiable
    print(f"\nUNSAT search: decisions={result.stats.sat_decisions} "
          f"conflicts={result.stats.sat_conflicts}")


def test_e14_ablation_verification_workload(benchmark, short, catalog_db):
    """End-to-end cost of a representative verification query (the E7
    temporal property), reported with its grounding statistics."""
    from repro.datalog.ast import Variable
    from repro.logic.fol import Forall as FA
    from repro.verify import holds_on_all_runs

    x, y = Variable("x"), Variable("y")
    prop = FA(
        (x, y),
        Implies(
            conjoin([Rel("deliver", (x,)), Rel("price", (x, y))]),
            Rel("past-pay", (x, y)),
        ),
    )
    verdict = benchmark(holds_on_all_runs, short, prop, catalog_db)
    assert verdict.holds
    print(
        f"\ntemporal query grounding: domain={verdict.stats.domain_size} "
        f"inst={verdict.stats.universal_instantiations} "
        f"clauses={verdict.stats.cnf_clauses} "
        f"decisions={verdict.stats.sat_decisions}"
    )
