"""E20: concurrent submit_batch vs serial on the multi-session workload.

Drives the E16 store-traffic shape (many independent customer sessions
over one shared catalog) through ``submit_batch(requests,
concurrency=N)``: the batch is grouped by session, each session's
subsequence runs in order on one worker, and results come back in
request order.  The record compares concurrent against serial
throughput on a single :class:`~repro.pods.service.PodService` and
sweeps a shards x workers grid on a
:class:`~repro.pods.service.ShardedPodService`.

Interpreting the ratio: stepping is pure Python joins, so on a
GIL-enabled interpreter the worker pool adds safety, latency overlap,
and fairness but no parallel speedup -- the honest expectation there is
~1.0x (the guard below only rejects a collapse).  On a free-threaded
(PEP 703) build or with the shards split across processes, the same
grouping scales with cores; the record stores ``gil_enabled`` and
``cpu_count`` so the trajectory stays comparable across machines.

Run as a script to emit the ``BENCH_e20.json`` perf record::

    python benchmarks/bench_e20_concurrency.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import build_friendly
from repro.commerce.workloads import SessionGenerator
from repro.pods import PodService, ShardedPodService, StepRequest

SEED = 7
PRODUCTS = 1000
STEPS_PER_SESSION = 8
FULL_SESSIONS = 1000
CONCURRENCY = 4
GRID_SHARDS = (1, 4)
GRID_WORKERS = (1, 2, 4, 8)


def build_workload(sessions: int, products: int, steps: int):
    """(catalog, scripts): the seeded per-session shopping scripts."""
    catalog = CatalogGenerator(seed=1).generate(products)
    scripts = {
        f"customer-{n:06d}": SessionGenerator(
            catalog, seed=SEED * 1_000_003 + n, supports_pending_bills=True
        ).session(steps)
        for n in range(sessions)
    }
    return catalog, scripts


def interleaved_batch(scripts) -> list[StepRequest]:
    """The round-robin request batch: step 1 of every session, then 2, ..."""
    batch: list[StepRequest] = []
    position = 0
    ids = sorted(scripts)
    while True:
        emitted = False
        for session_id in ids:
            script = scripts[session_id]
            if position < len(script):
                batch.append(StepRequest(session_id, script[position]))
                emitted = True
        if not emitted:
            return batch
        position += 1


def run_batch(service, scripts, batch, concurrency: int) -> dict:
    """Create the sessions, step the whole batch; return measurements."""
    for session_id in sorted(scripts):
        service.create_session(session_id)
    started = time.perf_counter()
    results = service.submit_batch(batch, concurrency=concurrency)
    elapsed = time.perf_counter() - started
    assert len(results) == len(batch)
    return {
        "concurrency": concurrency,
        "total_steps": len(results),
        "elapsed_seconds": round(elapsed, 6),
        "steps_per_second": round(len(results) / elapsed, 3),
    }


def measure_single(
    sessions: int, products: int, steps: int, concurrency: int
) -> dict:
    transducer = build_friendly()
    catalog, scripts = build_workload(sessions, products, steps)
    batch = interleaved_batch(scripts)
    service = PodService(transducer, catalog.as_database(), keep_logs=False)
    return run_batch(service, scripts, batch, concurrency)


def measure_sharded(
    sessions: int,
    products: int,
    steps: int,
    shards: int,
    concurrency: int,
) -> dict:
    transducer = build_friendly()
    catalog, scripts = build_workload(sessions, products, steps)
    batch = interleaved_batch(scripts)
    service = ShardedPodService(
        transducer, catalog.as_database(), shards=shards, keep_logs=False
    )
    record = run_batch(service, scripts, batch, concurrency)
    record["shards"] = shards
    return record


def run_experiment(
    sessions: int = FULL_SESSIONS,
    products: int = PRODUCTS,
    steps: int = STEPS_PER_SESSION,
    concurrency: int = CONCURRENCY,
) -> dict:
    """Serial-vs-concurrent plus the shards x workers grid."""
    serial = measure_single(sessions, products, steps, concurrency=1)
    concurrent = measure_single(sessions, products, steps, concurrency)
    ratio = (
        concurrent["steps_per_second"] / serial["steps_per_second"]
    )
    grid = [
        measure_sharded(
            max(sessions // 4, 1), products, steps, shards, workers
        )
        for shards in GRID_SHARDS
        for workers in GRID_WORKERS
    ]
    gil_probe = getattr(sys, "_is_gil_enabled", None)
    return {
        "experiment": "e20_batch_concurrency",
        "workload": {
            "transducer": "friendly",
            "catalog_products": products,
            "sessions": sessions,
            "steps_per_session": steps,
            "concurrency": concurrency,
            "seed": SEED,
        },
        "serial": serial,
        "concurrent": concurrent,
        "steps_per_second": concurrent["steps_per_second"],
        "concurrent_vs_serial_ratio": round(ratio, 3),
        "shards_workers_grid": grid,
        "python": platform.python_version(),
        "gil_enabled": bool(gil_probe()) if gil_probe else True,
        "cpu_count": os.cpu_count(),
        "note": (
            "per-session results/logs/snapshots are identical to serial "
            "at every concurrency; the ratio measures wall-clock only "
            "and is GIL/core-count bound on stock CPython"
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_e20_concurrent_matches_serial_outputs():
    """Acceptance: concurrency in {2, 8} reproduces serial results
    exactly on the (small) multi-session batch."""
    transducer = build_friendly()
    catalog, scripts = build_workload(sessions=24, products=100, steps=6)
    batch = interleaved_batch(scripts)

    def outputs(concurrency):
        service = PodService(transducer, catalog.as_database())
        for session_id in sorted(scripts):
            service.create_session(session_id)
        results = service.submit_batch(batch, concurrency=concurrency)
        return [(r.session.session_id, r.step, r.output) for r in results], {
            session_id: list(service.session(session_id).log().entries)
            for session_id in scripts
        }

    serial_results, serial_logs = outputs(1)
    for concurrency in (2, 8):
        results, logs = outputs(concurrency)
        assert results == serial_results
        assert logs == serial_logs


def test_e20_throughput_smoke(benchmark):
    """Small concurrent-batch throughput measurement (CI smoke size)."""
    record = benchmark.pedantic(
        measure_single,
        args=(40, 300, 6, CONCURRENCY),
        iterations=1,
        rounds=3,
    )
    assert record["steps_per_second"] > 0
    assert record["total_steps"] == 240


def test_e20_concurrency_preserves_throughput():
    """The pool must not collapse throughput.

    On a GIL-enabled single-core runner the expected ratio is ~1.0
    (no parallelism to win, only dispatch overhead to lose); the
    assertion guards against an accidentally serializing or quadratic
    fan-out path, not against runner noise.
    """
    serial = measure_single(200, 300, 6, concurrency=1)
    concurrent = measure_single(200, 300, 6, concurrency=CONCURRENCY)
    ratio = concurrent["steps_per_second"] / serial["steps_per_second"]
    print(
        f"\nE20: serial {serial['steps_per_second']:.0f} steps/s, "
        f"concurrent(x{CONCURRENCY}) {concurrent['steps_per_second']:.0f} "
        f"steps/s, ratio {ratio:.2f}"
    )
    assert ratio >= 0.3


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (100 sessions, 300 products)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--products", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=CONCURRENCY)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e20.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (100 if args.smoke else FULL_SESSIONS)
    )
    products = (
        args.products
        if args.products is not None
        else (300 if args.smoke else PRODUCTS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if products < 1:
        parser.error("--products must be >= 1")
    if args.concurrency < 1:
        parser.error("--concurrency must be >= 1")
    record = run_experiment(
        sessions=sessions, products=products, concurrency=args.concurrency
    )
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
