"""Perf trajectory across all ``BENCH_*.json`` records.

Each perf-relevant PR leaves one ``BENCH_<experiment>.json`` record in
the repo root (the ROADMAP's bench-trajectory convention).  This tool
reads them all, prints a table of headline throughput numbers plus any
speedup/ratio fields, and draws a quick ASCII bar chart so the
trajectory is visible without leaving the terminal.  With matplotlib
installed, ``--plot PATH`` also writes a PNG; the dependency is
optional and soft-failed, since the offline sandbox does not ship it.

Run with::

    python benchmarks/plot_trajectory.py [--root DIR] [--plot PATH]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

HEADLINE_KEYS = ("steps_per_second", "sessions_per_second")


def load_records(root: Path) -> list[tuple[str, dict]]:
    """All (file name, record) pairs, sorted by file name (= experiment).

    Unparseable files and records that are not JSON objects are skipped
    with a note instead of crashing the whole report: every PR adds a
    record with its own schema, and the trajectory must keep rendering
    whatever mix is checked in.
    """
    records = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path.name}: {error}")
            continue
        if not isinstance(record, dict):
            print(f"skipping {path.name}: not a JSON object")
            continue
        records.append((path.name, record))
    return records


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_ratio_key(key: str) -> bool:
    return key.endswith("_speedup") or key.endswith("_ratio") or key == "speedup"


def headline_metric(record: dict) -> tuple[str, float] | None:
    """The record's main throughput number, if it reports one.

    Prefers the conventional keys; otherwise falls back to any
    top-level numeric field that is not a cross-configuration ratio.
    Records without one (e.g. pure-comparison experiments) simply have
    no headline -- callers must tolerate None.
    """
    for key in HEADLINE_KEYS:
        value = record.get(key)
        if _is_number(value):
            return key, float(value)
    for key, value in sorted(record.items()):
        if _is_number(value) and key != "python" and not _is_ratio_key(key):
            return key, float(value)
    return None


def ratio_metrics(record: dict) -> list[tuple[str, float]]:
    """All speedup/ratio fields of a record (cross-configuration facts).

    Top-level keys win; when a record keeps its ratios only inside
    nested sections (schemas vary per experiment), those are surfaced
    with dotted names instead of being dropped.
    """
    found = [
        (key, float(value))
        for key, value in sorted(record.items())
        if _is_number(value) and _is_ratio_key(key)
    ]
    if found:
        return found
    for section, value in sorted(record.items()):
        if not isinstance(value, dict):
            continue
        for key, nested in sorted(value.items()):
            if _is_number(nested) and _is_ratio_key(key):
                found.append((f"{section}.{key}", float(nested)))
    return found


def format_table(records: list[tuple[str, dict]]) -> str:
    lines = [
        f"{'record':<22} {'experiment':<28} {'headline':<34} ratios",
        "-" * 100,
    ]
    for name, record in records:
        experiment = str(record.get("experiment", "?"))
        metric = headline_metric(record)
        headline = f"{metric[0]} = {metric[1]:,.1f}" if metric else "-"
        ratios = ", ".join(f"{k} = {v:g}" for k, v in ratio_metrics(record))
        lines.append(
            f"{name:<22} {experiment:<28} {headline:<34} {ratios or '-'}"
        )
    return "\n".join(lines)


def format_ascii_chart(records: list[tuple[str, dict]], width: int = 50) -> str:
    """Bar chart of the headline metrics, scaled to the largest."""
    points = []
    for name, record in records:
        metric = headline_metric(record)
        if metric is not None:
            points.append((name.removeprefix("BENCH_").removesuffix(".json"),
                           metric[1]))
    if not points:
        return "(no numeric records to chart)"
    top = max(value for _name, value in points)
    lines = []
    for name, value in points:
        bar = "#" * max(1, round(width * value / top)) if top else ""
        lines.append(f"{name:>12} | {bar} {value:,.0f}")
    return "\n".join(lines)


def write_png(records: list[tuple[str, dict]], out: Path) -> bool:
    """Matplotlib rendering of the trajectory; False if unavailable."""
    try:
        import matplotlib
    except ImportError:
        print("matplotlib not installed; skipping PNG (table above is canonical)")
        return False
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels, values = [], []
    for name, record in records:
        metric = headline_metric(record)
        if metric is not None:
            labels.append(name.removeprefix("BENCH_").removesuffix(".json"))
            values.append(metric[1])
    figure, axes = plt.subplots(figsize=(8, 4))
    axes.bar(labels, values)
    axes.set_ylabel("headline throughput (steps/s or equivalent)")
    axes.set_title("Perf trajectory across BENCH_* records")
    figure.tight_layout()
    figure.savefig(out)
    print(f"wrote {out}")
    return True


# -- pytest entry points ------------------------------------------------------


def test_headline_prefers_steps_per_second():
    record = {"python": "3.12", "steps_per_second": 10.0, "other": 3.0}
    assert headline_metric(record) == ("steps_per_second", 10.0)


def test_headline_falls_back_to_any_numeric():
    assert headline_metric({"python": "3.12", "zeta": 2.5}) == ("zeta", 2.5)
    assert headline_metric({"python": "3.12"}) is None


def test_headline_and_ratios_ignore_booleans():
    assert headline_metric({"accepted": True, "zeta": 2.5}) == ("zeta", 2.5)
    assert ratio_metrics({"ok_ratio": True}) == []


def test_ratio_metrics_picks_speedups_and_ratios():
    record = {"index_vs_naive_speedup": 11.2, "sharded_vs_single_ratio": 0.97,
              "steps_per_second": 5.0}
    assert ratio_metrics(record) == [
        ("index_vs_naive_speedup", 11.2),
        ("sharded_vs_single_ratio", 0.97),
    ]


def test_repo_records_are_loadable():
    records = load_records(Path(__file__).resolve().parent.parent)
    names = {name for name, _record in records}
    for expected in ("BENCH_e16", "BENCH_e17", "BENCH_e18", "BENCH_e19",
                     "BENCH_e20", "BENCH_e21", "BENCH_e22", "BENCH_e23",
                     "BENCH_e24", "BENCH_e25"):
        assert any(name.startswith(expected) for name in names)
    # The table and chart must render whatever mix of schemas exists,
    # headline or not.
    assert format_table(records)
    assert format_ascii_chart(records)


def test_heterogeneous_records_are_tolerated(tmp_path):
    """Records without the e16-e18 keys (or without any numbers, or not
    even objects) must not break the report."""
    (tmp_path / "BENCH_xa.json").write_text('{"experiment": "notes only"}')
    (tmp_path / "BENCH_xb.json").write_text('[1, 2, 3]')
    (tmp_path / "BENCH_xc.json").write_text(
        '{"experiment": "nested", "part": {"speedup": 3.5}, '
        '"steps_per_second": 7.0}'
    )
    records = load_records(tmp_path)
    assert [name for name, _ in records] == ["BENCH_xa.json", "BENCH_xc.json"]
    assert headline_metric(records[0][1]) is None
    assert ratio_metrics(records[0][1]) == []
    assert ratio_metrics(records[1][1]) == [("part.speedup", 3.5)]
    assert "-" in format_table(records)
    assert "7" in format_ascii_chart(records)


def test_headline_skips_bare_ratio_records():
    """A record reporting only comparison ratios has no headline (the
    old fallback wrongly promoted the alphabetically first ratio)."""
    record = {"python": "3.12", "a_vs_b_speedup": 9.0, "speedup": 2.0}
    assert headline_metric(record) is None
    assert ("a_vs_b_speedup", 9.0) in ratio_metrics(record)


def test_e18_record_claims_hold():
    """The committed E18 record must show cost >= greedy and delta
    beating full re-evaluation (the PR's acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e18.json").read_text())
    assert record["cost_vs_greedy_speedup"] >= 1.0
    assert record["delta_vs_full_speedup"] > 1.0
    assert record["delta"]["logs_identical"] is True


def test_e19_record_claims_hold():
    """The committed E19 record must show plan-backed verification
    beating the naive scan path, with agreeing verdicts and a sane
    audited-stepping ratio (PR 4's acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e19.json").read_text())
    assert record["plan_vs_naive_speedup"] > 1.0
    assert record["offline"]["verdicts_agree"] is True
    assert 0.0 < record["audited_vs_unaudited_ratio"] <= 1.5
    assert record["audit"]["violations"] == 0


def test_e21_record_claims_hold():
    """The committed E21 record must show the 100k-created / <=1k-resident
    run completing with bounded RSS at >= 0.8x the all-resident steps/s
    (PR 6's acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e21.json").read_text())
    assert record["workload"]["sessions"] >= 100_000
    bounded = record["headline"]["bounded"]
    all_resident = record["headline"]["all_resident"]
    assert 0 < bounded["max_resident"] <= 1_000
    assert bounded["resident_sessions"] <= bounded["max_resident"]
    assert bounded["rehydrations"] > 0
    assert record["bounded_vs_all_resident_ratio"] >= 0.8
    # The bound is what caps memory: the bounded peak must undercut the
    # all-resident peak, and both must be recorded in the JSON.
    assert 0 < bounded["ru_maxrss_mb"] < all_resident["ru_maxrss_mb"]


def test_e22_record_claims_hold():
    """The committed E22 record must cover the full workers x
    concurrency grid with zero worker restarts and a bounded (not
    collapsed) HTTP-vs-in-process ratio (PR 7's acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e22.json").read_text())
    grid = record["grid"]
    assert len(grid) >= 4
    points = {(p["workers"], p["worker_concurrency"]) for p in grid}
    assert len(points) == len(grid)
    assert all(p["worker_restarts"] == 0 for p in grid)
    assert all(p["steps_per_second"] > 0 for p in grid)
    assert record["in_process"]["steps_per_second"] > 0
    assert 0.02 <= record["http_vs_in_process_ratio"]
    # cpu_count is recorded so a reader can tell whether the grid *should*
    # have scaled (multi-core) or stayed flat (single core).
    assert record["cpu_count"] >= 1


def test_e23_record_claims_hold():
    """The committed E23 record must cover the scenario x store x
    concurrency matrix -- >= 4 genuinely new scenarios, >= 2 stores,
    >= 2 concurrency levels -- with clean audits everywhere except the
    adversarial cells, a real audit-under-attack measurement, and every
    scenario crossing the HTTP wire byte-identically (PR 8's acceptance
    criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e23.json").read_text())
    assert {"feed-delivery", "auction", "data-exchange", "adversarial"} <= set(
        record["scenarios"]
    )
    assert len(record["stores"]) >= 2
    assert len(record["concurrency_grid"]) >= 2
    matrix = record["matrix"]
    expected_cells = (
        len(record["scenarios"])
        * len(record["stores"])
        * len(record["concurrency_grid"])
    )
    assert len(matrix) == expected_cells
    keys = {(c["scenario"], c["store"], c["concurrency"]) for c in matrix}
    assert len(keys) == expected_cells
    assert all(c["steps_per_second"] > 0 for c in matrix)
    for cell in matrix:
        if cell["scenario"] == "adversarial":
            assert cell["audit_violations"] > 0
        else:
            assert cell["audit_violations"] == 0
            assert cell["audit_checks"] > 0
    assert record["audit_under_attack_steps_per_second"] > 0
    assert record["audit_under_attack_violations"] > 0
    assert 0 < record["audit_under_attack_ratio"] <= 1.5
    assert record["http_parity"]["all_match"] is True
    assert set(record["http_parity"]["digests_match"]) == set(
        record["scenarios"]
    )


def test_e24_record_claims_hold():
    """The committed E24 record must show the shadow mirror catching the
    adversarial buggy store (a replayable divergence, localized), zero
    divergences against identical candidates with byte-identical digest
    control, a priced overhead ratio per scenario, and a real
    ``check_every`` amortization win (PR 9's acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e24.json").read_text())
    matrix = record["shadow_matrix"]
    assert {c["scenario"] for c in matrix} == set(record["scenarios"])
    assert all(0 < c["overhead_ratio"] <= 1.5 for c in matrix)
    assert all(c["divergences"] == 0 for c in matrix)
    assert record["identical_candidate_divergences"] == 0
    assert 0 < record["shadow_overhead_ratio"] <= 1.5
    control = record["digest_control"]
    assert control["digests_equal"] is True
    assert control["shadow_log_digest"] == control["log_digest"]
    detection = record["divergence_detection"]
    assert detection["divergences"] >= 1
    assert detection["first_divergence_step"] is not None
    probe = detection["probe"]
    assert probe["first_divergent_step"] == 2
    assert probe["trace_replays_on_incumbent"] is True
    assert probe["trace_fails_on_candidate"] is True
    amortization = record["check_every"]
    assert amortization["amortized_audit_checks"] \
        < amortization["eager_audit_checks"]
    assert record["check_every_amortization_speedup"] > 1.0


def test_e25_record_claims_hold():
    """The committed E25 record must show the full hot path at >= 2x the
    reconstructed E16 configuration with byte-identical logs on every
    ablation rung, and the hot-path counters actually flowing (PR 10's
    acceptance criteria)."""
    root = Path(__file__).resolve().parent.parent
    record = json.loads((root / "BENCH_e25.json").read_text())
    ladder = record["ladder"]
    assert set(ladder) == {"e16_path", "columnar_memo", "joingraph", "kernels"}
    assert all(stage["steps_per_second"] > 0 for stage in ladder.values())
    digests = {stage["log_digest"] for stage in ladder.values()}
    assert len(digests) == 1
    assert record["logs_identical"] is True
    assert record["hot_path_vs_e16_speedup"] >= 2.0
    # The e16 rung really is the everything-off configuration.
    assert ladder["e16_path"]["flags"] == {
        "REPRO_COMPILED_KERNELS": "0",
        "REPRO_JOINGRAPH": "0",
        "REPRO_ORDER_MEMO": "0",
    }
    counters = record["counters"]
    assert counters["kernel_hits"] > 0
    assert counters["replans_avoided"] > 0
    assert counters["interned_constants"] > 0


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory holding the BENCH_*.json records",
    )
    parser.add_argument(
        "--plot",
        type=Path,
        default=None,
        help="also write a PNG chart here (requires matplotlib)",
    )
    args = parser.parse_args()
    records = load_records(args.root)
    if not records:
        print(f"no BENCH_*.json records under {args.root}")
        return
    print(format_table(records))
    print()
    print(format_ascii_chart(records))
    if args.plot is not None:
        write_png(records, args.plot)


if __name__ == "__main__":
    main()
