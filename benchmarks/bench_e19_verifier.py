"""E19: the Verifier API -- plan-backed property checking and audit cost.

Two measurements on a verify/audit workload (the E18 audit store plus a
``restricted`` catalog relation):

* **Offline run checking**: a T_past-input compliance property
  ("no past order in a restricted category") checked over every stage
  of a concrete run.  The seed-era path
  (:func:`repro.verify.temporal.check_run_satisfies`) grounds the
  universal quantifiers over the whole active domain at every stage;
  the PR 4 monitor compiles the property's violation into a datalog
  rule and executes it with the indexed, cost-ordered join machinery
  (delta-stepped across stages, since the rule reads only cumulative
  state and the database).  Both must return the same verdicts.
* **Audited stepping overhead**: the same sessions driven through
  ``PodService.submit()`` bare vs with an attached
  :class:`~repro.verify.api.OnlineAuditor` carrying that property --
  the price of checking every step of live traffic.

Run as a script to emit the ``BENCH_e19.json`` perf record::

    python benchmarks/bench_e19_verifier.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import Variable
from repro.logic.fol import And, Forall, Implies, Not, Rel
from repro.pods import PodService, StepRequest
from repro.verify.api import OnlineAuditor, TemporalProperty, Verifier
from repro.verify.temporal import check_run_satisfies

SEED = 11

X, C = Variable("X"), Variable("C")

#: Compliance: nothing from a restricted category is ever ordered.
#: The violation compiles to the state/database-only rule
#: ``__violation :- past-order(X), category(X, C), restricted(C)``,
#: which the monitor delta-steps from each stage's new state rows.
NO_RESTRICTED_ORDERS = Forall(
    (X, C),
    Implies(
        And((Rel("past-order", (X,)), Rel("category", (X, C)))),
        Not(Rel("restricted", (C,))),
    ),
)


def build_audit_store() -> SpocusTransducer:
    """The E18 audit store plus the ``restricted`` catalog relation."""
    return SpocusTransducer.make(
        inputs={"order": 1, "pay": 2},
        outputs={
            "sendbill": 2,
            "deliver": 1,
            "history": 2,
            "exposure": 2,
        },
        database={"price": 2, "category": 2, "region": 2, "restricted": 1},
        rules="""
        sendbill(X, P) :- order(X), price(X, P), NOT past-pay(X, P);
        deliver(X) :- past-order(X), price(X, P), pay(X, P),
                      NOT past-pay(X, P);
        history(X, C) :- past-order(X), category(X, C);
        exposure(C, R) :- past-order(X), category(X, C), region(C, R);
        """,
        log=("sendbill", "deliver"),
    )


def audit_database(products: int, restricted: tuple = ()) -> dict:
    return {
        "price": {(f"p{i}", 10 + i % 90) for i in range(products)},
        "category": {(f"p{i}", f"c{i % 20}") for i in range(products)},
        "region": {(f"c{c}", f"r{c % 5}") for c in range(20)},
        "restricted": {(c,) for c in restricted},
    }


def audit_script(
    products: int, steps: int, orders_per_step: int, seed: int = SEED
) -> list[dict]:
    rng = random.Random(seed)
    ordered: list[str] = []
    script = []
    for _ in range(steps):
        fresh = [
            f"p{rng.randrange(products)}" for _ in range(orders_per_step)
        ]
        ordered.extend(fresh)
        pay = rng.choice(ordered)
        script.append(
            {
                "order": {(p,) for p in fresh},
                "pay": {(pay, 10 + int(pay[1:]) % 90)},
            }
        )
    return script


# -- offline: plan-backed vs naive run checking -------------------------------


def measure_offline(products: int, steps: int, orders_per_step: int) -> dict:
    """Check the compliance property over one run, both ways."""
    transducer = build_audit_store()
    database = transducer.coerce_database(audit_database(products))
    script = audit_script(products, steps, orders_per_step)
    run = transducer.run(database, script)
    verifier = Verifier(transducer, database)
    spec = TemporalProperty(NO_RESTRICTED_ORDERS, name="no restricted orders")

    started = time.perf_counter()
    plan_verdict = verifier.check_run(spec, script)
    plan_seconds = time.perf_counter() - started

    started = time.perf_counter()
    naive_holds = check_run_satisfies(
        transducer, run, NO_RESTRICTED_ORDERS, database
    )
    naive_seconds = time.perf_counter() - started

    assert plan_verdict.holds == naive_holds, "paths must agree"
    return {
        "stages": steps,
        "catalog_products": products,
        "plan_seconds": round(plan_seconds, 6),
        "naive_seconds": round(naive_seconds, 6),
        "verdicts_agree": True,
        "holds": bool(naive_holds),
        "speedup": naive_seconds / plan_seconds if plan_seconds else 0.0,
    }


# -- online: audited vs unaudited stepping ------------------------------------


def run_sessions(
    auditor_factory, products: int, steps: int, orders_per_step: int,
    sessions: int,
):
    transducer = build_audit_store()
    auditor = auditor_factory() if auditor_factory else None
    service = PodService(
        transducer, audit_database(products), auditor=auditor
    )
    handles = [service.create_session(f"s{n}") for n in range(sessions)]
    script = audit_script(products, steps, orders_per_step)
    for inputs in script:
        for handle in handles:
            service.submit(StepRequest(handle, inputs))
    return service


def measure_audit_overhead(
    products: int, steps: int, orders_per_step: int, sessions: int = 4
) -> dict:
    bare = run_sessions(None, products, steps, orders_per_step, sessions)
    bare_rate = bare.metrics.steps_per_second()

    def factory():
        return OnlineAuditor(
            [TemporalProperty(NO_RESTRICTED_ORDERS, name="no restricted orders")]
        )

    audited = run_sessions(factory, products, steps, orders_per_step, sessions)
    audited_rate = audited.metrics.steps_per_second()
    snapshot = audited.metrics.snapshot()
    assert snapshot["audit_violations"] == 0, "clean workload must stay clean"
    return {
        "sessions": sessions,
        "steps_per_session": steps,
        "unaudited_steps_per_second": round(bare_rate, 3),
        "audited_steps_per_second": round(audited_rate, 3),
        "audit_checks": snapshot["audit_checks"],
        "audit_delta_rule_evals": snapshot["delta_rule_evals"],
        "audit_delta_rules_skipped": snapshot["delta_rules_skipped"],
        "violations": snapshot["audit_violations"],
        "ratio": audited_rate / bare_rate if bare_rate else 0.0,
    }


def run_experiment(products: int, steps: int, orders_per_step: int) -> dict:
    offline = measure_offline(products, steps, orders_per_step)
    audit = measure_audit_overhead(products, steps, orders_per_step)
    return {
        "experiment": "e19_verifier",
        "workload": {
            "property": "no restricted orders (state+database violation rule)",
            "store": "spocus audit transducer (E18 shape + restricted/1)",
            "seed": SEED,
        },
        "offline": offline,
        "audit": audit,
        "steps_per_second": audit["audited_steps_per_second"],
        "plan_vs_naive_speedup": round(offline["speedup"], 3),
        "audited_vs_unaudited_ratio": round(audit["ratio"], 3),
        "python": platform.python_version(),
    }


# -- pytest entry points ------------------------------------------------------


def test_e19_plan_and_naive_run_checks_agree():
    """Acceptance: the compiled monitor and the seed-era domain-grounding
    checker return identical verdicts, on clean and violating runs."""
    transducer = build_audit_store()
    spec = TemporalProperty(NO_RESTRICTED_ORDERS)
    script = audit_script(40, 6, 3)
    for restricted in ((), ("c1", "c7")):
        database = transducer.coerce_database(
            audit_database(40, restricted=restricted)
        )
        run = transducer.run(database, script)
        verifier = Verifier(transducer, database)
        verdict = verifier.check_run(spec, script)
        naive = check_run_satisfies(
            transducer, run, NO_RESTRICTED_ORDERS, database
        )
        assert verdict.holds == naive
        if not verdict.holds:
            assert verdict.trace.reproduces(transducer, database)


def test_e19_plan_backed_checking_is_not_slower():
    """Guard against plan-path collapse; the full record shows the
    real margin (generous bound for noisy shared runners)."""
    results = measure_offline(products=80, steps=10, orders_per_step=4)
    print(f"\nE19 offline speedup (plan vs naive): {results['speedup']:.2f}x")
    assert results["verdicts_agree"]
    assert results["speedup"] >= 0.8


def test_e19_audited_stepping_overhead_is_bounded():
    record = measure_audit_overhead(products=80, steps=10, orders_per_step=4,
                                    sessions=2)
    print(
        f"\nE19 audit overhead: bare {record['unaudited_steps_per_second']:.0f}"
        f" steps/s, audited {record['audited_steps_per_second']:.0f} steps/s"
        f" ({record['ratio']:.2f}x)"
    )
    # Wall-clock guard only; the full record is the real claim.
    assert record["ratio"] >= 0.2


def test_e19_violations_are_caught_with_replayable_traces():
    transducer = build_audit_store()
    database = audit_database(40, restricted=("c3",))
    auditor = OnlineAuditor([TemporalProperty(NO_RESTRICTED_ORDERS)])
    service = PodService(transducer, database, auditor=auditor)
    handle = service.create_session("restricted-buyer")
    service.submit(StepRequest(handle, {"order": {("p3",)}, "pay": set()}))
    findings = service.audit_findings()
    assert [f.step for f in findings] == [1]
    assert findings[0].trace.reproduces(transducer, database)
    assert service.metrics.audit_violations == 1


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (short run, small catalog)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e19.json",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_experiment(products=80, steps=12, orders_per_step=4)
    else:
        record = run_experiment(products=150, steps=30, orders_per_step=6)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
