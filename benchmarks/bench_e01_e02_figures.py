"""E1 / E2: regenerate the paper's Figure 1 and Figure 2 run traces.

The assertions pin the exact input/output sequences; the benchmark
measures the cost of executing the runs (the paper reports no numbers
-- the *content* of the figures is the reproduced artifact, printed on
stdout for EXPERIMENTS.md).
"""

from repro.commerce.models import FIGURE1_INPUTS, FIGURE2_INPUTS
from repro.core.run import format_run_figure


def test_e01_figure1_short(benchmark, short, catalog_db):
    run = benchmark(short.run, catalog_db, FIGURE1_INPUTS)
    assert run.outputs[0]["sendbill"] == {("time", 55)}
    assert run.outputs[1]["deliver"] == {("time",)}
    assert run.outputs[2]["sendbill"] == {("le_monde", 350)}
    assert run.outputs[3]["deliver"] == {("le_monde",)}
    print()
    print(format_run_figure(run, "Figure 1: a run of SHORT"))


def test_e02_figure2_friendly(benchmark, friendly, catalog_db):
    run = benchmark(friendly.run, catalog_db, FIGURE2_INPUTS)
    assert run.outputs[0]["unavailable"] == {("vogue",)}
    assert run.outputs[1]["rejectpay"] == {("newsweek",)}
    assert run.outputs[2]["alreadypaid"] == {("time",)}
    assert run.outputs[3]["rebill"] == {("newsweek", 45)}
    print()
    print(format_run_figure(run, "Figure 2: a run of FRIENDLY"))


def test_e01_throughput_long_session(benchmark, short):
    """Session-throughput variant: a 50-step generated workload."""
    from repro.commerce import CatalogGenerator, SessionGenerator

    catalog = CatalogGenerator(seed=11).generate(20)
    inputs = SessionGenerator(catalog, seed=3).session(50)
    run = benchmark(short.run, catalog.as_database(), inputs)
    assert len(run) == 50
