"""E11: the Theorem 4.2 Turing-machine simulation.

Compiles word-generating NTMs into Spocus transducers and checks that
the error-free simulation runs output exactly the prefix closure of the
machine's language, letter by letter; deviating inputs trip the error
rules.  Also reports the size of the compiled rule set.
"""

import copy

import pytest

from repro.automata.tm_compiler import compile_tm, simulation_inputs
from repro.automata.turing import word_writer_ntm
from repro.core.acceptors import is_error_free


def _emitted(run):
    return tuple(
        name[2:]
        for output in run.outputs
        for name in output.schema.names
        if name.startswith("p_") and output[name]
    )


def test_e11_simulation_outputs_language(benchmark):
    ntm = word_writer_ntm(["xy", "x"])
    compiled = compile_tm(ntm)

    def simulate_all():
        seen = set()
        for trace in ntm.computations(4, 12):
            run = compiled.transducer.run(
                {}, simulation_inputs(compiled, trace)
            )
            assert is_error_free(run)
            seen.add(_emitted(run))
        return seen

    seen = benchmark(simulate_all)
    assert seen == {("x", "y"), ("x",)}
    print(f"\nGen_error-free(T) full words: {sorted(seen)}")
    print(f"compiled rule count: {len(compiled.transducer.output_program)}")


def test_e11_prefixes_also_generated(benchmark):
    ntm = word_writer_ntm(["xyz"])
    compiled = compile_tm(ntm)
    trace = next(iter(ntm.computations(5, 14)))

    def prefixes():
        words = set()
        full = trace[-1][1].word()
        for length in range(len(full) + 1):
            run = compiled.transducer.run(
                {}, simulation_inputs(compiled, trace, output_length=length)
            )
            assert is_error_free(run)
            words.add(_emitted(run))
        return words

    words = benchmark(prefixes)
    assert words == {(), ("x",), ("x", "y"), ("x", "y", "z")}
    print(f"\nprefix closure observed: {sorted(words)}")


@pytest.mark.parametrize("mutation", ["content", "move", "stamp", "skip"])
def test_e11_deviations_detected(benchmark, mutation):
    ntm = word_writer_ntm(["xy"])
    compiled = compile_tm(ntm)
    trace = next(iter(ntm.computations(4, 12)))
    steps = simulation_inputs(compiled, trace)

    def mutate():
        bad = copy.deepcopy(steps)
        if mutation == "skip":
            bad = bad[len(trace[0][1].tape):]
            return bad
        for step in bad:
            if "move" in step:
                if mutation == "content":
                    row = next(iter(step["tape"]))
                    step["tape"].discard(row)
                    step["tape"].add(
                        (row[0], row[1], row[2],
                         "y" if row[3] != "y" else "x", row[4])
                    )
                elif mutation == "move":
                    step["move"] = {(99,)}
                elif mutation == "stamp":
                    step["tape"] = {
                        (0,) + row[1:] for row in step["tape"]
                    }
                break
        return bad

    bad = mutate()
    run = benchmark(compiled.transducer.run, {}, bad)
    assert not is_error_free(run)


@pytest.mark.parametrize("word_len", [1, 2, 3, 4])
def test_e11_scaling_word_length(benchmark, word_len):
    word = "".join("xy"[i % 2] for i in range(word_len))
    ntm = word_writer_ntm([word])
    compiled = compile_tm(ntm)
    # The index pool built in stage 1 doubles as the stamp pool, so the
    # tape must be at least as long as the computation (the paper:
    # "if the number of indexes is insufficient the simulation fails").
    trace = next(iter(ntm.computations(2 * word_len + 2, 4 * word_len + 6)))
    steps = simulation_inputs(compiled, trace)
    run = benchmark(compiled.transducer.run, {}, steps)
    assert is_error_free(run)
    assert _emitted(run) == tuple(word)
    print(f"\n|w|={word_len}: {len(steps)} simulation steps, "
          f"{len(compiled.transducer.output_program)} rules")
