"""E18: query-plan quality -- cost-based ordering and delta stepping.

Two measurements on multi-join verify/audit workloads:

* **Ordering**: a four-way audit join whose greedy order (most-bound
  atom, smaller relation on ties) picks a small-but-unselective relation
  before a large-but-selective one.  The cost-based
  :class:`~repro.datalog.plan.planner.Planner` reads the FactStore
  bucket statistics and flips that choice; both plans are executed on
  the same store and must produce identical fixpoints.
* **Delta stepping**: a Spocus audit transducer whose reporting rules
  join only cumulative state and the database.  Full mode
  (``incremental_stepping = False``) re-derives them every step; delta
  mode extends the cached results from each step's new state rows via
  ``PhysicalPlan.execute_delta``.  Session logs must be identical.

Run as a script to emit the ``BENCH_e18.json`` perf record::

    python benchmarks/bench_e18_plan_quality.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.spocus import SpocusTransducer
from repro.datalog import parse_program
from repro.datalog.evaluate import naive_evaluation
from repro.datalog.plan import ORDERING_COST, ORDERING_GREEDY, Planner
from repro.pods import PodService, StepRequest
from repro.relalg import FactStore

SEED = 7

# -- ordering workload --------------------------------------------------------

ORDER_PROGRAM = (
    "suspect(X, Z) :- audit(X), copurchase(X, Y), flagged(X, Y),"
    " review(Y, Z);"
)


def ordering_facts(scale: int = 1) -> dict[str, frozenset[tuple]]:
    """The audit join: skewed bucket sizes that defeat the greedy order.

    ``copurchase`` is large but selective on a bound customer (few rows
    per key); ``flagged`` is smaller overall but concentrated on the
    audited customers (hundreds of rows per key).  Greedy ties on bound
    terms and picks the smaller relation; the cost model compares the
    average buckets (5 vs 200 at scale 1) and picks ``copurchase``.
    """
    hot = 30
    return {
        "audit": frozenset((x,) for x in range(hot)),
        "copurchase": frozenset(
            (x % (4000 * scale), (x * 7 + i) % 1000)
            for x in range(4000 * scale)
            for i in range(5)
        ),
        "flagged": frozenset(
            (x, y) for x in range(hot) for y in range(200 * scale)
        ),
        "review": frozenset(
            (y, 1000 + (y * 3 + j) % 500)
            for y in range(1000)
            for j in range(2)
        ),
    }


def measure_ordering(scale: int = 1, rounds: int = 5) -> dict:
    """Execute the same program under both orderings on one store."""
    program = parse_program(ORDER_PROGRAM)
    store = FactStore(ordering_facts(scale))
    results: dict[str, dict] = {}
    fixpoints = []
    for ordering in (ORDERING_GREEDY, ORDERING_COST):
        plan = Planner(ordering).plan(program)
        plan.execute(store)  # warm the indexes this ordering uses
        started = time.perf_counter()
        for _ in range(rounds):
            derived = plan.execute(store)
        elapsed = time.perf_counter() - started
        fixpoints.append(derived["suspect"])
        results[ordering] = {
            "seconds_per_execution": elapsed / rounds,
            "derived_rows": len(derived["suspect"]),
        }
    assert fixpoints[0] == fixpoints[1], "orderings must agree"
    results["speedup"] = (
        results[ORDERING_GREEDY]["seconds_per_execution"]
        / results[ORDERING_COST]["seconds_per_execution"]
    )
    return results


# -- delta-stepping workload --------------------------------------------------


def build_audit_transducer() -> SpocusTransducer:
    """A verify/audit Spocus store: per-step rules plus two reporting
    rules (``history``, ``exposure``) that join only cumulative state
    with the database -- the delta-steppable shape."""
    return SpocusTransducer.make(
        inputs={"order": 1, "pay": 2},
        outputs={
            "sendbill": 2,
            "deliver": 1,
            "history": 2,
            "exposure": 2,
        },
        database={"price": 2, "category": 2, "region": 2},
        rules="""
        sendbill(X, P) :- order(X), price(X, P), NOT past-pay(X, P);
        deliver(X) :- past-order(X), price(X, P), pay(X, P),
                      NOT past-pay(X, P);
        history(X, C) :- past-order(X), category(X, C);
        exposure(C, R) :- past-order(X), category(X, C), region(C, R);
        """,
        log=("sendbill", "deliver"),
    )


def audit_database(products: int) -> dict[str, set[tuple]]:
    return {
        "price": {(f"p{i}", 10 + i % 90) for i in range(products)},
        "category": {(f"p{i}", f"c{i % 20}") for i in range(products)},
        "region": {(f"c{c}", f"r{c % 5}") for c in range(20)},
    }


def audit_script(
    products: int, steps: int, orders_per_step: int, seed: int = SEED
) -> list[dict[str, set[tuple]]]:
    rng = random.Random(seed)
    ordered: list[str] = []
    script = []
    for _ in range(steps):
        fresh = [
            f"p{rng.randrange(products)}" for _ in range(orders_per_step)
        ]
        ordered.extend(fresh)
        pay = rng.choice(ordered)
        script.append(
            {
                "order": {(p,) for p in fresh},
                "pay": {(pay, 10 + int(pay[1:]) % 90)},
            }
        )
    return script


def run_audit_session(
    incremental: bool,
    products: int,
    steps: int,
    orders_per_step: int,
    naive: bool = False,
):
    """One audited session; returns (service, log entries, metrics)."""
    transducer = build_audit_transducer()
    transducer.incremental_stepping = incremental
    service = PodService(transducer, audit_database(products))
    handle = service.create_session("auditor")
    script = audit_script(products, steps, orders_per_step)
    if naive:
        with naive_evaluation():
            for inputs in script:
                service.submit(StepRequest(handle, inputs))
    else:
        for inputs in script:
            service.submit(StepRequest(handle, inputs))
    return service, list(service.session(handle).log().entries), service.metrics


def measure_delta(
    products: int = 600, steps: int = 80, orders_per_step: int = 6
) -> dict:
    _svc, full_log, full_metrics = run_audit_session(
        False, products, steps, orders_per_step
    )
    _svc, delta_log, delta_metrics = run_audit_session(
        True, products, steps, orders_per_step
    )
    assert full_log == delta_log, "delta stepping must not change the run"
    full_rate = full_metrics.steps_per_second()
    delta_rate = delta_metrics.steps_per_second()
    return {
        "steps": steps,
        "orders_per_step": orders_per_step,
        "catalog_products": products,
        "full_steps_per_second": round(full_rate, 3),
        "delta_steps_per_second": round(delta_rate, 3),
        "delta_rule_evals": delta_metrics.delta_rule_evals,
        "delta_rules_skipped": delta_metrics.delta_rules_skipped,
        "logs_identical": True,
        "speedup": delta_rate / full_rate if full_rate else 0.0,
    }


def run_experiment(scale: int = 1, rounds: int = 5, **delta_sizes) -> dict:
    ordering = measure_ordering(scale=scale, rounds=rounds)
    delta = measure_delta(**delta_sizes)
    return {
        "experiment": "e18_plan_quality",
        "workload": {
            "ordering": "4-way audit join, skewed buckets",
            "delta": "spocus audit transducer, state-only reporting rules",
            "seed": SEED,
        },
        "ordering": ordering,
        "delta": delta,
        "steps_per_second": delta["delta_steps_per_second"],
        "cost_vs_greedy_speedup": round(ordering["speedup"], 3),
        "delta_vs_full_speedup": round(delta["speedup"], 3),
        "python": platform.python_version(),
    }


# -- pytest entry points ------------------------------------------------------


def test_e18_orderings_agree_and_cost_order_flips_the_join():
    """The two orderings derive the same fixpoint, and the cost model
    actually picks the selective relation first."""
    from repro.datalog.plan import LogicalPlan

    program = parse_program(ORDER_PROGRAM)
    store = FactStore(ordering_facts(scale=1))
    node = LogicalPlan.of(program).rules[0]
    cost_names = [
        info.atom.predicate
        for info in Planner(ORDERING_COST).plan(program).orderer(store)(
            node.positive
        )
    ]
    greedy_names = [
        info.atom.predicate
        for info in Planner(ORDERING_GREEDY).plan(program).orderer(store)(
            node.positive
        )
    ]
    assert cost_names == ["audit", "copurchase", "flagged", "review"]
    assert greedy_names == ["audit", "flagged", "copurchase", "review"]
    results = measure_ordering(scale=1, rounds=1)
    assert results[ORDERING_COST]["derived_rows"] == results[
        ORDERING_GREEDY
    ]["derived_rows"]


def test_e18_cost_ordering_is_not_slower():
    """Guard against plan-quality collapse; generous bound for noisy
    shared runners (the full record shows the real margin)."""
    results = measure_ordering(scale=1, rounds=3)
    print(f"\nE18 ordering speedup (cost vs greedy): {results['speedup']:.2f}x")
    assert results["speedup"] >= 0.8


def test_e18_delta_stepping_matches_full_and_naive_reference():
    """Acceptance: execute/execute_delta session logs are identical to
    each other and to the pre-refactor scan-based reference."""
    sizes = dict(products=120, steps=12, orders_per_step=4)
    _svc, full_log, _m = run_audit_session(False, **sizes)
    _svc, delta_log, delta_metrics = run_audit_session(True, **sizes)
    _svc, naive_log, _m = run_audit_session(True, naive=True, **sizes)
    assert delta_log == full_log == naive_log
    assert delta_metrics.delta_rule_evals > 0


def test_e18_delta_stepping_speedup_smoke():
    record = measure_delta(products=300, steps=40, orders_per_step=6)
    print(
        f"\nE18 delta stepping: full {record['full_steps_per_second']:.0f} "
        f"steps/s, delta {record['delta_steps_per_second']:.0f} steps/s "
        f"({record['speedup']:.2f}x)"
    )
    # Wall-clock guard only: the full-size record is the real claim.
    assert record["speedup"] >= 0.7


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (scale 1, short audit run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e18.json",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_experiment(
            scale=1, rounds=3, products=300, steps=40, orders_per_step=6
        )
    else:
        record = run_experiment(
            scale=2, rounds=5, products=600, steps=80, orders_per_step=6
        )
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
