"""E15: log minimization (Section 2.1, "Minimizing the log").

Reproduces the paper's observation that ``deliver`` can be removed from
``short``'s log without information loss, and searches the minimal
logs.  Bounded-determinacy semantics: exact over runs of the stated
length with at most one new fact per step over the active domain.
"""

from repro.commerce import minimal_logs, removable_log_relations

SMALL_DB = {"price": {("a", 10)}, "available": {("a",)}}


def test_e15_deliver_removable(benchmark, short):
    removable = benchmark(removable_log_relations, short, SMALL_DB)
    assert "deliver" in removable
    assert "pay" not in removable
    print(f"\nremovable log relations of SHORT: {sorted(removable)}")


def test_e15_minimal_logs(benchmark, short):
    minima = benchmark(minimal_logs, short, SMALL_DB)
    assert minima
    assert all("deliver" not in m for m in minima)
    print(f"\nminimal logs: {minima}")


def test_e15_two_product_db(benchmark, short):
    db = {"price": {("a", 10), ("b", 20)}, "available": {("a",), ("b",)}}
    removable = benchmark(
        removable_log_relations, short, db, 2, 1, ["a", 10, 20]
    )
    assert "deliver" in removable
