"""E23: the scenario matrix -- every workload x store x concurrency.

Every throughput record since BENCH_e16 measured one traffic shape
(the commerce store).  E23 runs the whole scenario registry -- the
paper's store plus feed delivery, the auction protocol, the
data-exchange firewall, the compliant guarded store, and the
adversarial attack traffic -- through :func:`repro.scenarios.
run_scenario`, across session-store backends and ``submit_batch``
concurrency levels, each cell audited live by the scenario's own
``PropertySpec`` list.

Two numbers are new in kind:

* ``audit_under_attack_*``: the adversarial scenario violates its spec
  on most steps, so the auditor's violation plans *match* constantly
  and every hit appends a finding with a replayable trace.  The ratio
  against the same traffic unaudited prices the worst-case audit, not
  the usual all-clean fast path.
* ``http_parity``: each scenario's open-loop traffic is also replayed
  through a process-level pod server via ``PodClient``, and the
  canonical log digests must match the in-process run byte for byte.

Run as a script to emit the ``BENCH_e23.json`` perf record::

    python benchmarks/bench_e23_scenarios.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
from functools import partial
from pathlib import Path

from repro.pods import SqliteStore
from repro.scenarios import (
    list_scenarios,
    run_scenario,
    scenario_database,
    scenario_transducer,
)
from repro.server import PodClient, PodServer

SEED = 23
SESSIONS = 150
MEAN_STEPS = 6
CONCURRENCY_GRID = (1, 4)
STORES = ("memory", "sqlite")

_REPO_ROOT = Path(__file__).resolve().parent.parent


def matrix_scenarios() -> list[str]:
    """The benchmark population: every standard-profile scenario.

    Slow-profile scenarios (``fraud-detection`` decides a BSR sentence
    per audited step) are excluded from the matrix and listed in the
    record so the exclusion is visible, not silent.
    """
    return [s.name for s in list_scenarios() if s.bench_profile == "standard"]


def excluded_scenarios() -> list[str]:
    return [s.name for s in list_scenarios() if s.bench_profile != "standard"]


def _store_for(kind: str, scratch: Path, tag: str):
    if kind == "memory":
        return None
    if kind == "sqlite":
        return SqliteStore(scratch / f"{tag}.sqlite", durability="batched")
    raise ValueError(f"unknown store kind {kind!r}")


def measure_cell(
    name: str,
    store_kind: str,
    concurrency: int,
    sessions: int,
    steps: int,
    scratch: Path,
    audit: bool = True,
) -> dict:
    """One matrix cell: audited open-loop traffic, logs off (throughput)."""
    report = run_scenario(
        name,
        sessions=sessions,
        steps=steps,
        seed=SEED,
        store=_store_for(
            store_kind, scratch, f"{name}-{store_kind}-c{concurrency}"
        ),
        concurrency=concurrency,
        audit=audit,
        keep_logs=False,
    )
    return {
        "scenario": name,
        "store": store_kind,
        "concurrency": concurrency,
        "audited": audit,
        "sessions": report.sessions,
        "total_steps": report.total_steps,
        "elapsed_seconds": round(report.wall_seconds, 6),
        "steps_per_second": round(report.steps_per_second, 3),
        "audit_checks": report.audit_checks,
        "audit_violations": report.audit_violations,
    }


def measure_http_parity(sessions: int, steps: int) -> dict:
    """Replay each scenario through a pod server; digests must match."""
    results = {}
    for name in matrix_scenarios():
        local = run_scenario(name, sessions=sessions, steps=steps, seed=SEED)
        with PodServer(
            partial(scenario_transducer, name),
            scenario_database(name, seed=SEED),
            workers=1,
        ) as server:
            client = PodClient(server.url, scenario_transducer(name))
            remote = run_scenario(
                name, service=client, sessions=sessions, steps=steps, seed=SEED
            )
        results[name] = bool(remote.log_digest == local.log_digest)
    return {
        "sessions": sessions,
        "mean_steps": steps,
        "digests_match": results,
        "all_match": all(results.values()),
    }


def run_experiment(
    sessions: int = SESSIONS,
    steps: int = MEAN_STEPS,
    concurrency_grid: tuple[int, ...] = CONCURRENCY_GRID,
    stores: tuple[str, ...] = STORES,
    parity_sessions: int = 8,
) -> dict:
    names = matrix_scenarios()
    with tempfile.TemporaryDirectory(prefix="bench_e23_") as tmp:
        scratch = Path(tmp)
        matrix = [
            measure_cell(name, store, concurrency, sessions, steps, scratch)
            for name in names
            for store in stores
            for concurrency in concurrency_grid
        ]
        # Audit-under-attack: the adversarial cell again, unaudited, so
        # the ratio isolates what the constantly-matching auditor costs.
        attack_unaudited = measure_cell(
            "adversarial", "memory", 1, sessions, steps, scratch, audit=False
        )
    by_key = {
        (cell["scenario"], cell["store"], cell["concurrency"]): cell
        for cell in matrix
    }
    headline = by_key[("commerce", "memory", 1)]
    attack = by_key[("adversarial", "memory", 1)]
    attack_ratio = (
        attack["steps_per_second"] / attack_unaudited["steps_per_second"]
    )
    parity = measure_http_parity(parity_sessions, min(steps, 5))
    return {
        "experiment": "e23_scenarios",
        "workload": {
            "sessions": sessions,
            "mean_steps_per_session": steps,
            "arrival": "open-loop Poisson, exponential think times",
            "session_lengths": "log-normal (heavy-tailed)",
            "key_skew": "Zipf over catalogs/topics/items/peers",
            "seed": SEED,
        },
        "scenarios": names,
        "excluded_slow": excluded_scenarios(),
        "stores": list(stores),
        "concurrency_grid": list(concurrency_grid),
        "matrix": matrix,
        "steps_per_second": headline["steps_per_second"],
        "headline": {
            "scenario": "commerce",
            "store": "memory",
            "concurrency": 1,
        },
        "audit_under_attack_steps_per_second": attack["steps_per_second"],
        "audit_under_attack_violations": attack["audit_violations"],
        "audit_under_attack_ratio": round(attack_ratio, 3),
        "http_parity": parity,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "note": (
            "every cell drives the scenario's seeded open-loop schedule "
            "through submit_batch with the scenario's own OnlineAuditor "
            "attached (logs off); adversarial traffic violates its spec "
            "on most steps, so its ratio prices the auditor's worst "
            "case -- findings accumulating with replayable traces -- "
            "against the same traffic unaudited"
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_e23_matrix_cell_roundtrip(tmp_path):
    """One small cell must produce a complete, audited measurement."""
    cell = measure_cell("feed-delivery", "sqlite", 2, 8, 4, tmp_path)
    assert cell["total_steps"] > 0
    assert cell["steps_per_second"] > 0
    assert cell["audit_checks"] > 0
    assert cell["audit_violations"] == 0


def test_e23_matrix_covers_scenarios_stores_concurrency(tmp_path):
    """The matrix shape the acceptance criteria name: >= 4 genuinely new
    scenarios x >= 2 stores x >= 2 concurrency levels."""
    names = matrix_scenarios()
    assert {"feed-delivery", "auction", "data-exchange", "adversarial"} <= set(
        names
    )
    assert len(STORES) >= 2 and len(CONCURRENCY_GRID) >= 2
    assert "fraud-detection" in excluded_scenarios()


def test_e23_audit_under_attack(tmp_path):
    """The adversarial cell must actually be under attack: violations on
    a large fraction of steps, and a computable audited/unaudited ratio."""
    audited = measure_cell("adversarial", "memory", 1, 12, 5, tmp_path)
    unaudited = measure_cell(
        "adversarial", "memory", 1, 12, 5, tmp_path, audit=False
    )
    assert audited["audit_violations"] > audited["total_steps"] * 0.3
    assert unaudited["audit_checks"] == 0
    ratio = audited["steps_per_second"] / unaudited["steps_per_second"]
    assert ratio > 0


def test_e23_http_parity_smoke():
    """Every standard scenario's traffic crosses the wire byte-identically."""
    parity = measure_http_parity(sessions=4, steps=4)
    assert parity["all_match"], parity["digests_match"]


def test_e23_smoke_benchmark(benchmark):
    """One tiny audited cell as a pytest-benchmark measurement."""

    def once():
        with tempfile.TemporaryDirectory() as tmp:
            return measure_cell("commerce", "memory", 1, 10, 4, Path(tmp))

    cell = benchmark.pedantic(once, iterations=1, rounds=2)
    assert cell["steps_per_second"] > 0


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small matrix for CI (24 sessions, 4 mean steps)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_e23.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (24 if args.smoke else SESSIONS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.smoke:
        record = run_experiment(
            sessions=sessions, steps=4, parity_sessions=4
        )
    else:
        record = run_experiment(sessions=sessions)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
