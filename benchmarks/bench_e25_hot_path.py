"""E25: the datalog hot path -- columnar store, join-graph plans, kernels.

Measures the end-to-end pod throughput of the E16 workload (many
independent customer sessions over one shared catalog) under the
hot-path ablation ladder, attributing the speedup to each layer:

* ``e16_path`` -- every PR-10 switch off (``REPRO_COMPILED_KERNELS=0``,
  ``REPRO_JOINGRAPH=0``, ``REPRO_ORDER_MEMO=0``): the reference
  interpreter re-planning every join, i.e. the pre-hot-path E16
  configuration (the columnar storage itself has no switch; it is
  equivalence-tested instead);
* ``columnar_memo`` -- plus per-rule join-order memoization;
* ``joingraph`` -- plus connected-subgraph (join-graph) ordering;
* ``kernels`` -- plus compiled rule kernels: the default configuration.

Every rung must produce byte-identical logs: each configuration's
canonical log digest (:func:`repro.scenarios.log_digest`) is recorded
and compared, so the ladder prices pure mechanism, never behaviour.

Run as a script to emit the ``BENCH_e25.json`` perf record::

    python benchmarks/bench_e25_hot_path.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import warnings
from contextlib import contextmanager
from pathlib import Path

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import build_friendly
from repro.commerce.workloads import simulate_concurrent_customers
from repro.pods import PodService
from repro.scenarios import log_digest

SEED = 7
PRODUCTS = 1000
STEPS_PER_SESSION = 8
FULL_SESSIONS = 1000
FULL_ROUNDS = 3
DIGEST_SESSIONS = 40

#: The ablation ladder, cheapest configuration first.  Later rungs turn
#: on one mechanism each; ``kernels`` is the shipped default.
LADDER = (
    ("e16_path", {"REPRO_COMPILED_KERNELS": "0", "REPRO_JOINGRAPH": "0",
                  "REPRO_ORDER_MEMO": "0"}),
    ("columnar_memo", {"REPRO_COMPILED_KERNELS": "0", "REPRO_JOINGRAPH": "0",
                       "REPRO_ORDER_MEMO": "1"}),
    ("joingraph", {"REPRO_COMPILED_KERNELS": "0", "REPRO_JOINGRAPH": "1",
                   "REPRO_ORDER_MEMO": "1"}),
    ("kernels", {"REPRO_COMPILED_KERNELS": "1", "REPRO_JOINGRAPH": "1",
                 "REPRO_ORDER_MEMO": "1"}),
)


@contextmanager
def _flags(assignments: dict):
    previous = {name: os.environ.get(name) for name in assignments}
    os.environ.update(assignments)
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value


def _simulate(sessions: int, products: int, steps: int, service=None):
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(products)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return simulate_concurrent_customers(
            transducer,
            catalog,
            sessions=sessions,
            steps_per_session=steps,
            seed=SEED,
            service=service,
        )


def _measure(flags: dict, sessions: int, products: int, steps: int,
             rounds: int):
    """Best-of-``rounds`` throughput report under ``flags``."""
    best = None
    for _ in range(rounds):
        with _flags(flags):
            report = _simulate(sessions, products, steps)
        assert report.total_steps == sessions * steps
        if best is None or (
            report.metrics["steps_per_second"]
            > best.metrics["steps_per_second"]
        ):
            best = report
    return best


def _digest(flags: dict, sessions: int, products: int, steps: int) -> str:
    """Canonical log digest of the workload under ``flags``."""
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(products)
    with _flags(flags):
        service = PodService(transducer, catalog.as_database(), keep_logs=True)
        _simulate(sessions, products, steps, service=service)
        return log_digest(service, service.session_ids())


def run_experiment(
    sessions: int = FULL_SESSIONS,
    products: int = PRODUCTS,
    steps: int = STEPS_PER_SESSION,
    rounds: int = FULL_ROUNDS,
    digest_sessions: int = DIGEST_SESSIONS,
) -> dict:
    """Measure the whole ladder; return the JSON perf record."""
    ladder: dict[str, dict] = {}
    hot = None
    for name, flags in LADDER:
        report = _measure(flags, sessions, products, steps, rounds)
        if name == "kernels":
            hot = report
        ladder[name] = {
            "flags": dict(flags),
            "steps_per_second": report.metrics["steps_per_second"],
            "mean_step_latency_seconds": report.metrics[
                "mean_step_latency_seconds"
            ],
            "log_digest": _digest(flags, digest_sessions, products, steps),
        }
    digests = {stage["log_digest"] for stage in ladder.values()}
    rate = {name: stage["steps_per_second"] for name, stage in ladder.items()}
    return {
        "experiment": "e25_hot_path",
        "workload": {
            "transducer": "friendly",
            "catalog_products": products,
            "sessions": sessions,
            "steps_per_session": steps,
            "rounds_best_of": rounds,
            "digest_sessions": digest_sessions,
            "seed": SEED,
        },
        "ladder": ladder,
        "steps_per_second": rate["kernels"],
        "hot_path_vs_e16_speedup": round(rate["kernels"] / rate["e16_path"], 2),
        "memo_vs_e16_speedup": round(
            rate["columnar_memo"] / rate["e16_path"], 2
        ),
        "joingraph_vs_memo_speedup": round(
            rate["joingraph"] / rate["columnar_memo"], 2
        ),
        "kernels_vs_joingraph_speedup": round(
            rate["kernels"] / rate["joingraph"], 2
        ),
        "logs_identical": len(digests) == 1,
        "counters": {
            key: hot.metrics[key]
            for key in (
                "kernels_compiled",
                "kernel_hits",
                "replans_avoided",
                "interned_constants",
            )
        },
        "python": platform.python_version(),
    }


# -- pytest entry points ------------------------------------------------------


def test_e25_ladder_logs_byte_identical():
    """Every ablation rung produces the same canonical log digest."""
    digests = {
        name: _digest(flags, 24, 200, 5) for name, flags in LADDER
    }
    assert len(set(digests.values())) == 1, digests


def test_e25_counters_flow_through_metrics():
    """The default configuration reports its hot-path counters."""
    report = _measure(dict(LADDER[-1][1]), 20, 200, 5, rounds=1)
    # The kernel memo lives on the process-wide shared plan, so an
    # earlier test in this process may already have compiled it.
    assert report.metrics["kernels_compiled"] + report.metrics["kernel_hits"] > 0
    assert report.metrics["kernel_hits"] > 0
    assert report.metrics["replans_avoided"] > 0
    assert report.metrics["interned_constants"] > 0
    off = _measure(dict(LADDER[0][1]), 20, 200, 5, rounds=1)
    assert off.metrics["kernels_compiled"] == 0
    assert off.metrics["kernel_hits"] == 0
    assert off.metrics["replans_avoided"] == 0


def test_e25_hot_path_smoke(benchmark):
    """Small steady-state measurement of the default path (CI size)."""
    report = benchmark.pedantic(
        _measure,
        args=(dict(LADDER[-1][1]), 40, 300, 6, 1),
        iterations=1,
        rounds=3,
    )
    assert report.metrics["steps_per_second"] > 0


def test_e25_hot_path_speedup_at_scale():
    """Acceptance: the full ladder beats the reconstructed E16 path.

    The committed ``BENCH_e25.json`` record claims >= 2x (checked by
    ``plot_trajectory.py``); the live CI assertion leaves headroom for
    shared-runner noise.
    """
    record = run_experiment(sessions=250)
    print(
        f"\nE25: kernels {record['steps_per_second']:.0f} steps/s, "
        f"e16 path {record['ladder']['e16_path']['steps_per_second']:.0f} "
        f"steps/s, speedup {record['hot_path_vs_e16_speedup']:.2f}x "
        f"(memo {record['memo_vs_e16_speedup']:.2f}x, "
        f"joingraph {record['joingraph_vs_memo_speedup']:.2f}x, "
        f"kernels {record['kernels_vs_joingraph_speedup']:.2f}x)"
    )
    assert record["logs_identical"] is True
    assert record["hot_path_vs_e16_speedup"] >= 1.5


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (100 sessions, 300 products, 1 round)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--products", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e25.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (100 if args.smoke else FULL_SESSIONS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    products = (
        args.products
        if args.products is not None
        else (300 if args.smoke else PRODUCTS)
    )
    if products < 1:
        parser.error("--products must be >= 1")
    record = run_experiment(
        sessions=sessions,
        products=products,
        rounds=1 if args.smoke else FULL_ROUNDS,
        digest_sessions=min(DIGEST_SESSIONS, sessions),
    )
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
