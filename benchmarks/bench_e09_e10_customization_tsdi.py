"""E9 / E10: customization containment (Thm 3.5 / Cor 3.6) and the Tsdi
compiler (Thm 4.1).

E9 reproduces the paper's headline customization claim: "short and
friendly yield exactly the same set of valid logs", plus a
strictly-contained restriction and the syntactic sufficient condition.

E10 compiles the three Section 4.1 example disciplines into error rules
and validates the Theorem 4.1 equivalence on sampled runs.
"""

from repro.commerce import is_syntactically_safe_customization
from repro.commerce.models import build_short
from repro.core.acceptors import is_error_free
from repro.verify import TsdiConjunct, TsdiSentence, enforce_tsdi, satisfies_tsdi
from repro.verify.containment import (
    log_contains,
    pointwise_log_equal,
)


def test_e09_short_equals_friendly(benchmark, short, friendly, catalog_db):
    verdict = benchmark(pointwise_log_equal, short, friendly, catalog_db)
    assert verdict.contained
    print("\nshort ≡ friendly (pointwise log equality): confirmed")


def test_e09_syntactic_condition(benchmark, short, friendly):
    report = benchmark(is_syntactically_safe_customization, short, friendly)
    assert report.safe


def test_e09_full_log_containment(benchmark, catalog_db):
    from repro.core.spocus import SpocusTransducer

    base = SpocusTransducer.make(
        {"order": 1, "pay": 2},
        {"sendbill": 2, "deliver": 1},
        {"price": 2, "available": 1},
        """
        sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
        deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
        """,
        log=("order", "pay", "sendbill", "deliver"),
    )
    custom = base.with_extra_rules(
        "unavailable(X) :- order(X), NOT available(X);",
        extra_inputs={"inquiry": 1},
        extra_outputs={"unavailable": 1},
    )
    verdict = benchmark(log_contains, base, custom, catalog_db)
    assert verdict.contained


def test_e09_unsound_customization_detected(benchmark, catalog_db):
    from repro.core.spocus import SpocusTransducer

    base = SpocusTransducer.make(
        {"order": 1, "pay": 2},
        {"deliver": 1},
        {"price": 2, "available": 1},
        "deliver(X) :- past-order(X), price(X,Y), pay(X,Y);",
        log=("order", "pay", "deliver"),
    )
    rogue = base.with_extra_rules(
        "deliver(X) :- rush(X), price(X,Y);",
        extra_inputs={"rush": 1},
    )
    verdict = benchmark(log_contains, base, rogue, catalog_db)
    assert not verdict.contained
    assert verdict.difference is not None
    print(f"\nrogue rule separated at {verdict.difference}")


SECTION_41_EXAMPLES = [
    # 2. payments must match an order and the catalog price
    TsdiConjunct.parse("pay(X,Y)", "price(X,Y), past-order(X)"),
    # 3. cancellations must follow orders
    TsdiConjunct.parse("cancel(X)", "past-order(X)"),
]


def test_e10_compile_and_enforce(benchmark):
    short = build_short().with_extra_rules(
        "", extra_inputs={"cancel": 1}
    )
    sentence = TsdiSentence.of(*SECTION_41_EXAMPLES)
    guarded = benchmark(enforce_tsdi, short, sentence)
    assert "error" in guarded.schema.outputs


def test_e10_theorem41_equivalence(benchmark, catalog_db):
    short = build_short().with_extra_rules("", extra_inputs={"cancel": 1})
    sentence = TsdiSentence.of(*SECTION_41_EXAMPLES)
    guarded = enforce_tsdi(short, sentence)
    samples = [
        [{"order": {("time",)}}, {"pay": {("time", 55)}}],
        [{"pay": {("time", 55)}}],
        [{"order": {("time",)}}, {"cancel": {("time",)}}],
        [{"cancel": {("time",)}}],
        [{"order": {("vogue",)}}, {"pay": {("vogue", 1)}}],
        [{}],
    ]

    def check_all():
        agree = 0
        for inputs in samples:
            run = guarded.run(catalog_db, inputs)
            lhs = is_error_free(run)
            rhs = satisfies_tsdi(guarded, run, sentence, catalog_db)
            assert lhs == rhs
            agree += 1
        return agree

    assert benchmark(check_all) == len(samples)
    print("\nerror-free(run) == satisfies-Tsdi(inputs) on all samples "
          "(Theorem 4.1)")
