"""Expressiveness: propositional languages and Turing power (Thm 4.2).

Two sides of the paper's expressiveness story:

* *without* input control, propositional Spocus transducers generate
  exactly the prefix-closed regular languages whose minimal automata
  have only self-loop cycles (Section 3.1);
* *with* error-free input control, they simulate arbitrary Turing
  machines: Gen_error-free ranges over all prefix-closed r.e. languages
  (Theorem 4.2).

Run with:  python examples/tm_expressiveness.py
"""

from repro.automata import (
    compile_tm,
    is_generable_language,
    prefix_closure,
    simulation_inputs,
)
from repro.automata.propositional import (
    build_abc_example,
    gen_words,
    transducer_for_automaton,
)
from repro.automata.regular import concat, literal, star
from repro.automata.turing import word_writer_ntm
from repro.core.acceptors import is_error_free


def main() -> None:
    # -- Section 3.1: the ab*c example ----------------------------------------
    abc = build_abc_example()
    words = sorted("".join(w) or "ε" for w in gen_words(abc, 4))
    print(f"Gen(ab*c transducer) up to length 4: {words}")

    good = prefix_closure(
        concat(literal("a"), star(literal("b")), literal("c")).to_dfa()
    )
    bad = prefix_closure(star(concat(literal("a"), literal("b"))).to_dfa())
    print(f"prefix(ab*c) generable: {is_generable_language(good)}")
    print(f"prefix((ab)*) generable: {is_generable_language(bad)}")

    # The converse construction: language -> transducer.
    synthesized = transducer_for_automaton(good)
    assert gen_words(synthesized, 4) == good.words_up_to(4)
    print("converse construction round-trips prefix(ab*c): True")

    # -- Theorem 4.2: TM simulation --------------------------------------------
    ntm = word_writer_ntm(["xy", "z"])
    compiled = compile_tm(ntm)
    print(
        f"\ncompiled NTM -> Spocus transducer: "
        f"{len(compiled.transducer.output_program)} rules, "
        f"{len(tuple(compiled.transducer.schema.inputs))} input relations"
    )
    for trace in ntm.computations(tape_length=4, max_steps=12):
        steps = simulation_inputs(compiled, trace)
        run = compiled.transducer.run({}, steps)
        word = "".join(
            name[2:]
            for output in run.outputs
            for name in output.schema.names
            if name.startswith("p_") and output[name]
        )
        print(
            f"  computation of {len(trace) - 1} moves: error-free="
            f"{is_error_free(run)}, output word {word!r}"
        )

    # Any deviation from the protocol trips an error rule:
    trace = next(iter(ntm.computations(4, 12)))
    steps = simulation_inputs(compiled, trace)
    steps[len(trace[0][1].tape):][0]["move"] = {(99,)}
    cheating = compiled.transducer.run({}, steps)
    print(f"cheating run error-free: {is_error_free(cheating)}")


if __name__ == "__main__":
    main()
