"""Tour of the scenario registry: list -> run -> audit -> go remote.

The registry (`repro.scenarios`) bundles each workload -- transducer,
database, seeded traffic generator, and the PropertySpecs that audit
it -- behind one name, and `run_scenario` drives any of them through
any service surface: in-process `PodService`, `ShardedPodService`, or
a `PodClient` talking HTTP to `python -m repro.server --scenario NAME`.

Run with:  python examples/scenario_tour.py
"""

from repro.scenarios import get_scenario, list_scenarios, run_scenario


def main() -> None:
    # -- 1. What's registered? ---------------------------------------
    print("registered scenarios:")
    for scenario in list_scenarios():
        print(f"  {scenario.name:<16} {scenario.description}")

    # -- 2. Run one: open-loop feed traffic, audited live ------------
    # Sessions arrive on a Poisson process, topics are Zipf-skewed,
    # session lengths are heavy-tailed -- and every step is checked by
    # the scenario's own OnlineAuditor specs ("feed only to
    # subscribers", "nosub only before subscription").
    report = run_scenario("feed-delivery", sessions=24, steps=6, seed=7)
    print(
        f"\nfeed-delivery: {report.total_steps} steps across "
        f"{report.sessions} sessions, {report.audit_checks} audit checks, "
        f"{report.audit_violations} violations"
    )
    assert report.audit_violations == 0

    # -- 3. Determinism: the digest is the equality token ------------
    # Same seed, same traffic, same logs -- byte-identical, and the
    # report's log digest proves it without shipping the logs around.
    again = run_scenario("feed-delivery", sessions=24, steps=6, seed=7)
    assert again.log_digest == report.log_digest
    print(f"rerun digest matches: {report.log_digest[:16]}…")

    # -- 4. The adversarial scenario *wants* to be caught ------------
    # It serves the deliberately buggy store under violating traffic;
    # the auditor records a finding (with a replayable trace) on most
    # steps.  That is the audit-under-attack measurement of BENCH_e23.
    attack = run_scenario("adversarial", sessions=12, steps=6, seed=7)
    assert get_scenario("adversarial").expects_violations
    assert attack.audit_violations > 0
    print(
        f"adversarial: {attack.audit_violations} of {attack.audit_checks} "
        "audited steps violated 'no delivery before payment' (by design)"
    )

    # -- 5. The same driver goes over the wire -----------------------
    # run_scenario(service=PodClient(...)) sends the identical traffic
    # to a process-level pod server; the digest matches the in-process
    # run.  (Start one with: python -m repro.server --scenario auction)
    print("\nremote: run_scenario(service=PodClient(url, ...)) -- same digest.")


if __name__ == "__main__":
    main()
