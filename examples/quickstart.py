"""Quickstart: define a business model, run it, verify it.

Reproduces the paper's running example in a few lines: the SHORT
transducer, the Figure 1 run, a temporal safety property, and a goal
reachability check.

Run with:  python examples/quickstart.py
"""

from repro.commerce.models import FIGURE1_INPUTS, build_short, default_database
from repro.core.run import format_run_figure
from repro.datalog.ast import Variable
from repro.logic.fol import Forall, Implies, Rel, conjoin
from repro.verify import Goal, holds_on_all_runs, is_goal_reachable, is_valid_log


def main() -> None:
    # 1. The SHORT business model of Section 2.1 (parsed from the
    #    paper's own concrete syntax).
    short = build_short()
    db = default_database()

    # 2. Execute the Figure 1 run: order, pay, order, pay.
    run = short.run(db, FIGURE1_INPUTS)
    print(format_run_figure(run, "Figure 1: a run of SHORT"))
    print()

    # 3. Log validation (Theorem 3.1): the run's log must be valid, and
    #    the decision procedure returns a generating input sequence.
    result = is_valid_log(short, db, run.logs)
    print(f"log of the run is valid: {result.valid}")

    # 4. A forged log -- a delivery nobody paid for -- is rejected.
    forged = [{"deliver": {("time",)}, "sendbill": set(), "pay": set()}]
    print(f"forged log is valid: {is_valid_log(short, db, forged).valid}")

    # 5. Temporal verification (Theorem 3.3): "no product is delivered
    #    before it has been paid".
    x, y = Variable("x"), Variable("y")
    no_delivery_before_pay = Forall(
        (x, y),
        Implies(
            conjoin([Rel("deliver", (x,)), Rel("price", (x, y))]),
            Rel("past-pay", (x, y)),
        ),
    )
    verdict = holds_on_all_runs(short, no_delivery_before_pay, db)
    print(f"no-delivery-before-payment holds on all runs: {verdict.holds}")

    # 6. Goal reachability (Theorem 3.2): delivery is achievable exactly
    #    for products with a catalog price.
    print(
        "deliver(time) reachable:",
        is_goal_reachable(short, db, Goal.atoms(deliver=("time",))).reachable,
    )
    print(
        "deliver(vogue) reachable:",
        is_goal_reachable(short, db, Goal.atoms(deliver=("vogue",))).reachable,
    )


if __name__ == "__main__":
    main()
