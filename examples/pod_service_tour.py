"""Tour of the PodService API: create -> step -> snapshot -> restart -> resume.

The multi-session runtime's public surface is :class:`repro.pods.PodService`:
sessions are addressed by :class:`SessionHandle`, traffic is submitted as
:class:`StepRequest` objects, and every reply is a typed :class:`StepResult`.
Backed by a :class:`JsonlDirectoryStore`, a session's state outlives the
serving process -- the byoda "data pod" shape: stop the service, start a new
one over the same directory, and the conversation continues where it left
off.  A :class:`ShardedPodService` serves the same API across N internal
engines with stable hash routing, and an :class:`OnlineAuditor` attaches
verified property specs to live pods (the final section below).

See also the quickstart in the top-level README.md.

Run with:  python examples/pod_service_tour.py
"""

import tempfile
from pathlib import Path

from repro.commerce.models import build_buggy_store, build_short, default_database
from repro.pods import (
    JsonlDirectoryStore,
    PodService,
    ShardedPodService,
    StepRequest,
)
from repro.verify.api import LogValidity, OnlineAuditor

FIGURE1_FIRST_HALF = [
    {"order": {("time",)}},
    {"pay": {("time", 55)}},
]
FIGURE1_SECOND_HALF = [
    {"order": {("newsweek",)}},
    {"pay": {("newsweek", 45)}},
]


def main() -> None:
    transducer = build_short()
    database = default_database()

    with tempfile.TemporaryDirectory() as scratch:
        pod_dir = Path(scratch) / "pods"

        # 1. Create: a service over a durable store, one session per
        #    customer, addressed by a handle we choose ourselves.
        service = PodService(
            transducer, database, store=JsonlDirectoryStore(pod_dir)
        )
        alice = service.create_session("alice")
        print(f"created session {alice.session_id!r} on shard {alice.shard}")

        # 2. Step: all traffic is submit(StepRequest) -> StepResult.
        for inputs in FIGURE1_FIRST_HALF:
            result = service.submit(StepRequest(alice, inputs))
            print(
                f"  step {result.step}: "
                f"deliver={sorted(result.output['deliver'])} "
                f"sendbill={sorted(result.output['sendbill'])}"
            )

        # 3. Snapshot: every step was written through to the store as a
        #    JSON line; this is the session's whole persistent state.
        snapshot_file = service.store.path_of("alice")
        print(f"\nsnapshot file {snapshot_file.name}:")
        for line in snapshot_file.read_text().splitlines():
            print(f"  {line[:76]}{'...' if len(line) > 76 else ''}")

        # 4. Restart: drop the service (the process "dies"), then build
        #    a fresh one over the same directory.
        del service
        revived = PodService(
            transducer, database, store=JsonlDirectoryStore(pod_dir)
        )
        print(f"\nnew service sees stored sessions: {revived.stored_session_ids()}")

        # 5. Resume: the first touch of the old handle restores the pod
        #    (cumulative state, step count, log) and stepping continues.
        for inputs in FIGURE1_SECOND_HALF:
            result = revived.submit(StepRequest(alice, inputs))
            print(
                f"  step {result.step}: "
                f"deliver={sorted(result.output['deliver'])}"
            )
        log = revived.close_session(alice)
        uninterrupted = transducer.run(
            database, FIGURE1_FIRST_HALF + FIGURE1_SECOND_HALF
        )
        print(
            f"resumed log has {len(log)} entries; identical to an "
            f"uninterrupted run: {log.entries == uninterrupted.logs}"
        )

    # 6. Sharding: same API, N internal engines, stable hash routing.
    sharded = ShardedPodService(transducer, database, shards=4)
    handles = [sharded.create_session(f"customer-{n}") for n in range(6)]
    print("\nsharded service routing:")
    for handle in handles:
        print(f"  {handle.session_id} -> shard {handle.shard}")
    for handle in handles:
        sharded.run_session(handle, FIGURE1_FIRST_HALF)
    merged = sharded.metrics
    print(
        f"merged metrics: {merged.sessions_created} sessions, "
        f"{merged.steps_executed} steps across {sharded.shard_count} shards"
    )

    # 7. Concurrency: submit_batch(concurrency=N) groups a batch by
    #    session, steps every session's subsequence in order on one
    #    worker, and returns results in request order -- identical to
    #    serial execution, because sessions share only the read-only
    #    indexed catalog and the compiled query plan.  On the sharded
    #    service each session's group lands inside its shard's slice.
    batch = [
        StepRequest(handle, inputs)
        for inputs in FIGURE1_SECOND_HALF
        for handle in handles
    ]
    serial_results = sharded.submit_batch(batch, concurrency=1)
    # A fresh identical service, this time stepped by 4 workers.
    concurrent = ShardedPodService(transducer, database, shards=4)
    for handle in handles:
        concurrent.create_session(handle.session_id)
        concurrent.run_session(handle, FIGURE1_FIRST_HALF)
    concurrent_results = concurrent.submit_batch(batch, concurrency=4)
    print(
        f"\nconcurrent batch: {len(concurrent_results)} steps across "
        f"{len(handles)} sessions on 4 workers; identical to serial: "
        f"{[r.output for r in concurrent_results] == [r.output for r in serial_results]}"
    )

    # 8. Query plans: every session steps through one shared compiled
    #    PhysicalPlan; explain() shows the join orders the cost-based
    #    planner picked against this catalog's index statistics.
    print("\noutput-program plan (cost-based, against the live catalog):")
    for line in transducer.explain_plan(database).splitlines():
        print(f"  {line}")
    # Re-read: .metrics merges fresh, so this includes section 7's batch.
    snapshot = sharded.metrics.snapshot()
    print(
        "plan/evaluation counters: "
        f"{snapshot['plans_compiled']} plan(s) compiled, "
        f"{snapshot['plan_cache_hits']} cache hits, "
        f"{snapshot['full_rule_evals']} full rule joins, "
        f"{snapshot['delta_rule_evals']} delta joins "
        f"(+{snapshot['delta_rules_skipped']} skipped as unchanged)"
    )
    # The hot path underneath those joins: each (rule, join order) is
    # compiled once into a kernel and reused, join orders are served
    # from the per-rule memo instead of re-running the cost model, and
    # the catalog's constants sit in the process-wide intern pool.
    print(
        "hot-path counters: "
        f"{snapshot['kernels_compiled']} kernel(s) compiled, "
        f"{snapshot['kernel_hits']} kernel hits, "
        f"{snapshot['replans_avoided']} replans avoided, "
        f"{snapshot['interned_constants']} interned constants"
    )

    # 9. Online audit: attach a verified property spec to a live pod.
    #    Here a *drifting implementation* (the buggy store forgets the
    #    payment check on deliver) serves traffic while the auditor
    #    validates its log, step by step, against the verified SHORT
    #    model -- the paper's audit notion made operational.
    buggy = build_buggy_store()
    auditor = OnlineAuditor([LogValidity()], reference=transducer)
    audited = PodService(buggy, database, auditor=auditor)
    mallory = audited.create_session("mallory")
    print("\nonline audit (buggy store vs verified short reference):")
    audited.submit(StepRequest(mallory, {"order": {("time",)}}))
    audited.submit(StepRequest(mallory, {}))  # buggy delivers unpaid here
    for finding in audited.audit_findings():
        print(f"  step {finding.step}: {finding.violation}")
        # The finding carries a machine-checkable trace: replaying its
        # inputs through a fresh PodService reproduces the violating
        # log exactly.
        replayed = finding.trace.replay(buggy, database)
        print(
            f"  trace replay: {len(replayed.entries)} step(s), "
            f"reproduces the violating log: "
            f"{finding.trace.reproduces(buggy, database)}"
        )
    audit_snapshot = audited.metrics.snapshot()
    print(
        f"audit counters: {audit_snapshot['audited_steps']} steps audited, "
        f"{audit_snapshot['audit_checks']} checks, "
        f"{audit_snapshot['audit_violations']} violation(s)"
    )

    # 10. Tiered storage: a single-file SQLite store plus a bounded
    #     hot-session cache.  max_resident_sessions=1 means at most ONE
    #     live Session object in RAM -- every other open session lives
    #     only in the store -- yet stepping is oblivious: an evicted
    #     session is rehydrated on its next request, byte-identical to
    #     never having been evicted (every step was written through
    #     before its result returned).
    with tempfile.TemporaryDirectory() as scratch:
        from repro.pods import SqliteStore

        db_file = Path(scratch) / "pods.sqlite"
        tiered = PodService(
            transducer,
            database,
            store=SqliteStore(db_file, durability="batched"),
            max_resident_sessions=1,
        )
        frank = tiered.create_session("frank")
        grace = tiered.create_session("grace")  # evicts frank (LRU)
        print("\ntiered storage (max_resident_sessions=1):")
        print(f"  open sessions:     {tiered.session_ids()}")
        print(f"  resident sessions: {tiered.resident_session_ids()}")
        # Stepping frank rehydrates him from SQLite -- and evicts grace.
        tiered.submit(StepRequest(frank, FIGURE1_FIRST_HALF[0]))
        tiered.submit(StepRequest(frank, FIGURE1_FIRST_HALF[1]))
        counters = tiered.metrics.snapshot()
        print(
            f"  after stepping frank: resident={tiered.resident_session_ids()}, "
            f"evictions={counters['sessions_evicted']}, "
            f"rehydrations={counters['sessions_rehydrated']}"
        )
        # The write-behind buffer flushes on demand (and on any read).
        flushed = tiered.flush()
        stats = tiered.store.stats()
        print(
            f"  flushed {flushed} buffered event(s); store holds "
            f"{stats.sessions} sessions / {stats.events} events in "
            f"{stats.bytes_on_disk} bytes ({db_file.name})"
        )
        # Resume after a "restart", exactly as with the JSONL store.
        resumed = PodService(transducer, database, store=SqliteStore(db_file))
        log = resumed.close_session(frank)
        uninterrupted = transducer.run(database, FIGURE1_FIRST_HALF)
        print(
            f"  restarted service resumes frank: log identical to an "
            f"uninterrupted run: {log.entries == uninterrupted.logs}"
        )

    # 11. The pod *server*: the same runtime behind an HTTP front-end,
    #     one worker process per shard (crash isolation, own store
    #     directory each), stdlib only.  PodClient speaks the versioned
    #     JSON wire protocol and re-exposes the familiar surface, so
    #     this section reads exactly like section 2 -- the HTTP hop and
    #     the process boundary are invisible until something fails
    #     (full shard -> typed Backpressure / HTTP 429; crashed worker
    #     -> restarted and rehydrated from its write-through store).
    #     The factory is a module-level callable (build_short) because
    #     workers are spawned processes and pickle their config.
    from repro.server import PodClient, PodServer

    print("\npod server (2 worker processes behind HTTP):")
    with PodServer(build_short, database, workers=2) as server:
        client = PodClient(server.url, transducer)
        print(f"  listening on {server.url}, healthz: {client.healthz()}")
        henry = client.create_session("henry")
        print(f"  created {henry.session_id!r} -> shard {henry.shard}")
        for inputs in FIGURE1_FIRST_HALF:
            result = client.submit(StepRequest(henry, inputs))
            print(
                f"  step {result.step}: "
                f"deliver={sorted(result.output['deliver'])} "
                f"sendbill={sorted(result.output['sendbill'])}"
            )
        view = client.session(henry)
        print(
            f"  snapshot over the wire: {view.steps} steps, "
            f"log entries: {len(view.log())}"
        )
        payload = client.metrics_payload()
        print(
            f"  merged metrics: {payload['pods']['steps_executed']} steps "
            f"across {payload['server']['workers']} workers "
            f"({payload['server']['restarts']} restarts)"
        )


if __name__ == "__main__":
    main()
