"""Tour of shadow deploys: mirror -> diff -> replay -> persist.

`repro.shadow.ShadowService` wraps an incumbent pod service and a
candidate behind the exact pod-service surface: every request is
answered by the incumbent and mirrored to the candidate, and the two
runs are diffed per step -- outputs plus the paper's log projection --
under a `ComparisonPolicy`.  Divergences become replayable
`DivergenceReport`s, and both shadow reports and audit findings can be
written through any `SessionStore` as a ledger that survives restarts.

Run with:  python examples/shadow_tour.py
"""

import tempfile
from pathlib import Path

from repro.commerce.models import (
    build_buggy_store,
    build_short,
    default_database,
)
from repro.pods.api import StepRequest
from repro.pods.service import PodService
from repro.scenarios import run_scenario
from repro.shadow import ComparisonPolicy, ShadowService
from repro.verify.api import LogValidity, OnlineAuditor


def main() -> None:
    # -- 1. Shadow the paper's SHORT store with its buggy variant ----
    # Same schema, one dropped rule: the buggy store delivers without
    # checking payment.  The shadow wrapper IS a pod service -- the
    # incumbent answers, the candidate runs the same requests beside it.
    db = default_database()
    shadow = ShadowService(
        PodService(build_short(), db), PodService(build_buggy_store(), db)
    )
    customer = shadow.create_session("customer-1")
    shadow.submit(StepRequest(customer, {"order": {("time",)}}))
    shadow.submit(StepRequest(customer, {"order": {("newsweek",)}}))

    report = shadow.first_divergence()
    assert report is not None and report.first_divergent_step == 2
    print(
        f"caught a {report.kind} at step {report.step}: "
        f"candidate delivered {sorted(report.candidate['deliver'])} unpaid"
    )

    # -- 2. The divergence replays, deterministically ----------------
    # The report carries a CounterexampleTrace: the recorded inputs
    # reproduce the incumbent's log on the incumbent's transducer and
    # fail on the candidate's.  That asymmetry is the machine-checkable
    # statement "these two are not log-equivalent".
    assert report.trace.reproduces(build_short())
    assert not report.trace.reproduces(build_buggy_store())
    print("trace replays on SHORT, fails on the buggy store")

    # -- 3. Policies: containment admits a quieter candidate ---------
    # With the roles reversed (buggy incumbent, SHORT candidate) the
    # candidate logs strictly LESS.  Strict equivalence flags that;
    # log *containment* (Theorem 3.4's relation) accepts it.
    quiet = ShadowService(
        PodService(build_buggy_store(), db),
        PodService(build_short(), db),
        policy=ComparisonPolicy.containment(),
    )
    session = quiet.create_session("customer-2")
    quiet.submit(StepRequest(session, {"order": {("time",)}}))
    quiet.submit(StepRequest(session, {"order": {("newsweek",)}}))
    assert quiet.divergence_count() == 0
    print("containment policy: quieter candidate admitted, 0 divergences")

    # -- 4. Findings persist: the audit ledger -----------------------
    # Hand an OnlineAuditor any SessionStore path and every finding is
    # written through as a violations ledger; a fresh auditor over the
    # same ledger rehydrates them after a restart.
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = Path(tmp) / "violations.sqlite"
        auditor = OnlineAuditor(
            [LogValidity(name="log validates against SHORT")],
            reference=build_short(),
            ledger=ledger_path,
        )
        service = PodService(build_buggy_store(), db, auditor=auditor)
        handle = service.create_session("audited-1")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.submit(StepRequest(handle, {"order": {("newsweek",)}}))
        findings = auditor.findings()
        auditor.ledger.close()

        rehydrated = OnlineAuditor(
            [LogValidity(name="log validates against SHORT")],
            reference=build_short(),
            ledger=ledger_path,
        )
        assert rehydrated.findings() == findings
        print(
            f"ledger: {len(findings)} finding(s) survived a restart "
            "byte-identically"
        )

    # -- 5. Shadow a whole scenario's open-loop traffic --------------
    # run_scenario(shadow_candidate=...) wraps the built service; the
    # adversarial scenario's buggy store diverges from commerce traffic
    # almost immediately.  (From a shell, the same gate is
    # `python -m repro.scenarios --run commerce --shadow adversarial`,
    # exiting non-zero on any divergence.)
    run = run_scenario(
        "commerce", sessions=8, steps=4, shadow_candidate="adversarial"
    )
    assert run.divergences >= 1
    print(
        f"scenario shadow: {run.divergences} divergence(s), first at "
        f"step {run.first_divergence_step}"
    )

    clean = run_scenario(
        "commerce", sessions=8, steps=4, shadow_candidate="commerce"
    )
    assert clean.divergences == 0
    assert clean.shadow_log_digest == clean.log_digest
    print("identical candidate: 0 divergences, byte-identical digests")


if __name__ == "__main__":
    main()
