"""Input disciplines and error-free runs (Section 4 / Theorem 4.1).

Business rules like "payments must quote the catalog price" restrict
which *input sequences* are acceptable.  The paper's Tsdi language
expresses such disciplines, and Theorem 4.1 compiles them into Spocus
``error`` rules whose error-free runs are exactly the compliant
sessions.  This example builds a guarded store, exercises compliant and
non-compliant sessions, and runs the Theorem 4.4 verifier.

Run with:  python examples/guarded_store.py
"""

from repro.commerce.models import build_short, default_database
from repro.core.acceptors import first_error_step, is_error_free
from repro.datalog.parser import parse_program
from repro.logic.fol import Bottom
from repro.verify import (
    TsdiConjunct,
    TsdiSentence,
    compile_tsdi,
    enforce_tsdi,
    holds_on_error_free_runs,
    satisfies_tsdi,
)


def main() -> None:
    base = build_short().with_extra_rules("", extra_inputs={"cancel": 1})
    db = default_database()

    # The Section 4.1 example disciplines (2) and (3).
    discipline = TsdiSentence.of(
        TsdiConjunct.parse("pay(X,Y)", "price(X,Y), past-order(X)"),
        TsdiConjunct.parse("cancel(X)", "past-order(X)"),
    )
    print("compiled error rules (Theorem 4.1):")
    for rule in compile_tsdi(discipline):
        print(f"  {rule};")
    store = enforce_tsdi(base, discipline)

    sessions = {
        "order then pay": [
            {"order": {("time",)}},
            {"pay": {("time", 55)}},
        ],
        "pay without order": [{"pay": {("time", 55)}}],
        "wrong price": [
            {"order": {("time",)}},
            {"pay": {("time", 99)}},
        ],
        "cancel after order": [
            {"order": {("time",)}},
            {"cancel": {("time",)}},
        ],
        "cancel out of the blue": [{"cancel": {("time",)}}],
    }
    print("\nsession audit:")
    for name, inputs in sessions.items():
        run = store.run(db, inputs)
        ok = is_error_free(run)
        marker = "compliant" if ok else (
            f"REJECTED at step {first_error_step(run) + 1}"
        )
        agrees = satisfies_tsdi(store, run, discipline, db) == ok
        print(f"  {name:24s} -> {marker}  (Thm 4.1 equivalence: {agrees})")

    # Theorem 4.4: verify a consequence on all error-free runs.  The
    # positive-state guard "no pay after cancel" is verifiable:
    guarded = base.with_extra_rules(
        "error :- pay(X,Y), past-cancel(X);",
        extra_outputs={"error": 0},
    )
    claim = TsdiSentence.of(
        TsdiConjunct(
            parse_program("__h :- pay(X,Y), past-cancel(X)").rules[0].body,
            Bottom(),
        )
    )
    verdict = holds_on_error_free_runs(guarded, claim, db)
    print(f"\nThm 4.4: 'no payment after cancellation' on error-free runs: "
          f"{verdict.holds}")


if __name__ == "__main__":
    main()
