"""Customization audit: is a modified business model still sound?

Section 3.3's scenario: a customer customizes the supplier's model for
convenience (FRIENDLY adds warnings to SHORT) or to impose internal
policy (a purchasing cap).  The supplier accepts a customization when
its valid logs remain valid for the original model.  This example runs
the full audit toolbox:

1. the syntactic sufficient condition (no dependency path from new
   inputs into the log);
2. the semantic pointwise-equality check behind the paper's claim that
   SHORT and FRIENDLY have the same valid logs;
3. the Theorem 3.5 decision procedure on a full-log model, catching an
   unsound "rush delivery" customization with a separating run.

Run with:  python examples/customization_audit.py
"""

from repro.commerce import is_syntactically_safe_customization
from repro.commerce.models import build_friendly, build_short, default_database
from repro.core.spocus import SpocusTransducer
from repro.verify.containment import log_contains, pointwise_log_equal


def main() -> None:
    short = build_short()
    friendly = build_friendly()
    db = default_database()

    # -- 1. syntactic audit ---------------------------------------------------
    report = is_syntactically_safe_customization(short, friendly)
    print(f"FRIENDLY is a syntactically safe customization: {report.safe}")

    # -- 2. semantic equivalence (the paper's claim) ---------------------------
    verdict = pointwise_log_equal(short, friendly, db)
    print(f"SHORT and FRIENDLY yield identical logs pointwise: "
          f"{verdict.contained}")

    # -- 3. Theorem 3.5 on a full-log model ------------------------------------
    base = SpocusTransducer.make(
        {"order": 1, "pay": 2},
        {"sendbill": 2, "deliver": 1},
        {"price": 2, "available": 1},
        """
        sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
        deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
        """,
        log=("order", "pay", "sendbill", "deliver"),
    )

    polite = base.with_extra_rules(
        "unavailable(X) :- order(X), NOT available(X);",
        extra_inputs={"inquiry": 1},
        extra_outputs={"unavailable": 1},
    )
    print(
        "polite customization contained:",
        log_contains(base, polite, db).contained,
    )

    rogue = base.with_extra_rules(
        "deliver(X) :- rush(X), price(X,Y);",
        extra_inputs={"rush": 1},
    )
    verdict = log_contains(base, rogue, db)
    print(f"rush-delivery customization contained: {verdict.contained}")
    if not verdict.contained:
        relation, step = verdict.difference
        print(f"  separated on log relation {relation!r} at step {step}")
        print("  separating input sequence:")
        for index, instance in enumerate(verdict.separating_inputs, start=1):
            print(f"    step {index}: {instance}")


if __name__ == "__main__":
    main()
