"""Fraud detection: validating customer-submitted logs (Section 2.1).

The scenario the paper motivates log validity with: a supplier lets a
customer run the supplier's business model locally and only receives
the (partial) log of the session.  Before honoring the session, the
supplier validates the log -- a forged log claiming an unpaid delivery
must be rejected.

Run with:  python examples/fraud_detection.py
"""

from repro.commerce import CatalogGenerator, random_log
from repro.commerce.models import build_short
from repro.commerce.workloads import tamper_log
from repro.core.run import format_log
from repro.verify import is_valid_log


def main() -> None:
    short = build_short()
    catalog = CatalogGenerator(seed=20).generate(6)
    db = catalog.as_database()

    # An honest customer session, executed at the customer's site.
    run, logs = random_log(short, catalog, length=8, seed=5)
    print("customer-submitted log:")
    print(format_log(logs))
    result = is_valid_log(short, db, logs)
    print(f"\nsupplier verdict: {'ACCEPT' if result.valid else 'REJECT'}")
    assert result.valid

    # The decision procedure even reconstructs a witness session.
    print("\nreconstructed generating inputs (first two steps):")
    for step, instance in enumerate(result.witness_inputs[:2], start=1):
        print(f"  step {step}: {instance}")

    # A fraudulent log: a delivery injected for a product never paid.
    forged = tamper_log(logs, catalog, seed=99)
    verdict = is_valid_log(short, db, forged)
    print(f"\nforged log verdict: {'ACCEPT' if verdict.valid else 'REJECT'}")
    assert not verdict.valid

    # Because `short`'s log is partial (orders are unlogged), validation
    # is a real decision problem: the supplier must *search* for inputs
    # explaining the log, which is what the BSR reduction does.
    print(
        f"\ngrounding solved: {verdict.stats.cnf_clauses} clauses over "
        f"{verdict.stats.cnf_variables} variables, "
        f"domain size {verdict.stats.domain_size}"
    )


if __name__ == "__main__":
    main()
