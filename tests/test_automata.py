"""Tests for the automata substrate and the Section 3.1 / Theorem 4.2 results."""

import pytest

from repro.automata import (
    DFA,
    compile_tm,
    concat,
    from_words,
    gen_words,
    has_only_self_loop_cycles,
    is_generable_language,
    is_prefix_closed,
    literal,
    prefix_closure,
    simulation_inputs,
    star,
    transducer_for_automaton,
    union,
)
from repro.automata.propositional import build_abc_example, gen_automaton
from repro.automata.turing import BLANK, word_writer_ntm
from repro.core.acceptors import is_error_free


def words(strings):
    return {tuple(s) for s in strings}


class TestNfaDfa:
    def test_literal(self):
        nfa = literal("ab")
        assert nfa.accepts("ab")
        assert not nfa.accepts("a")
        assert not nfa.accepts("abb")

    def test_union(self):
        nfa = union(literal("a"), literal("bb"))
        assert nfa.accepts("a") and nfa.accepts("bb")
        assert not nfa.accepts("b")

    def test_concat_star(self):
        nfa = concat(literal("a"), star(literal("b")), literal("c"))
        for word in ("ac", "abc", "abbbc"):
            assert nfa.accepts(word)
        assert not nfa.accepts("bc")

    def test_determinization_preserves_language(self):
        nfa = concat(literal("a"), star(literal("b")), literal("c"))
        dfa = nfa.to_dfa()
        assert nfa.words_up_to(5) == dfa.words_up_to(5)

    def test_minimize_preserves_language(self):
        dfa = union(literal("ab"), literal("ab")).to_dfa()
        minimal = dfa.minimize()
        assert minimal.words_up_to(4) == dfa.words_up_to(4)

    def test_trim_removes_dead_states(self):
        dfa = DFA(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={(0, "a"): 1, (1, "a"): 2},
            start=0,
            accepting={1},
        )
        trimmed = dfa.trim()
        assert 2 not in trimmed.states

    def test_product_intersection(self):
        left = star(literal("a")).to_dfa()
        right = union(literal("a"), literal("b")).to_dfa()
        both = left.product(right, accept_both=True)
        assert both.words_up_to(2) == words(["a"])


class TestCharacterization:
    def test_prefix_closure_of_abc(self):
        closed = prefix_closure(literal("abc").to_dfa())
        assert closed.words_up_to(3) == words(["", "a", "ab", "abc"])

    def test_prefix_closed_detection(self):
        assert is_prefix_closed(prefix_closure(literal("ab").to_dfa()))
        assert not is_prefix_closed(literal("ab").to_dfa())

    def test_self_loop_cycles_detection(self):
        with_loop = prefix_closure(
            concat(literal("a"), star(literal("b"))).to_dfa()
        )
        assert has_only_self_loop_cycles(with_loop)
        with_cycle = prefix_closure(star(literal("ab")).to_dfa())
        assert not has_only_self_loop_cycles(with_cycle)

    def test_paper_examples(self):
        # "the prefix closure of ab*c is such a language, whereas the
        # prefix closure of (ab)* is not."
        good = prefix_closure(
            concat(literal("a"), star(literal("b")), literal("c")).to_dfa()
        )
        assert is_generable_language(good)
        bad = prefix_closure(star(concat(literal("a"), literal("b"))).to_dfa())
        assert not is_generable_language(bad)

    def test_abc_example_gen(self):
        abc = build_abc_example()
        generated = gen_words(abc, 5)
        expected = prefix_closure(
            concat(literal("a"), star(literal("b")), literal("c")).to_dfa()
        ).words_up_to(5)
        assert generated == expected

    def test_gen_automaton_is_prefix_closed_with_self_loops_only(self):
        abc = build_abc_example()
        dfa = gen_automaton(abc).to_dfa()
        assert is_prefix_closed(dfa)
        assert has_only_self_loop_cycles(dfa)

    def test_converse_construction_abstar_c(self):
        language = prefix_closure(
            concat(literal("a"), star(literal("b")), literal("c")).to_dfa()
        )
        transducer = transducer_for_automaton(language)
        assert gen_words(transducer, 4) == language.words_up_to(4)

    def test_converse_construction_branching(self):
        language = prefix_closure(from_words(["ab", "cd"]).to_dfa())
        transducer = transducer_for_automaton(language)
        assert gen_words(transducer, 3) == language.words_up_to(3)

    def test_converse_rejects_bad_language(self):
        bad = prefix_closure(star(concat(literal("a"), literal("b"))).to_dfa())
        from repro.errors import VerificationError

        with pytest.raises(VerificationError):
            transducer_for_automaton(bad)

    def test_converse_with_self_loops(self):
        language = prefix_closure(
            concat(literal("x"), star(literal("y"))).to_dfa()
        )
        transducer = transducer_for_automaton(language)
        assert gen_words(transducer, 4) == language.words_up_to(4)


class TestNTM:
    def test_word_writer_generates_exactly(self):
        ntm = word_writer_ntm(["xy", "z"])
        assert ntm.generated_words(4, 12) == words(["xy", "z"])

    def test_single_letter_word(self):
        ntm = word_writer_ntm(["a"])
        assert ntm.generated_words(3, 8) == words(["a"])

    def test_halt_requires_head_at_origin(self):
        ntm = word_writer_ntm(["ab"])
        for trace in ntm.computations(4, 12):
            assert trace[-1][1].head == 0

    def test_config_word_stops_at_blank(self):
        from repro.automata.turing import TMConfig

        config = TMConfig("h", ("x", "y", BLANK, "z"), 0)
        assert config.word() == ("x", "y")


class TestTheorem42:
    @pytest.fixture(scope="class")
    def compiled(self):
        ntm = word_writer_ntm(["xy"])
        return compile_tm(ntm)

    @pytest.fixture(scope="class")
    def computation(self, compiled):
        return next(iter(compiled.ntm.computations(4, 12)))

    def test_honest_simulation_error_free(self, compiled, computation):
        run = compiled.transducer.run(
            {}, simulation_inputs(compiled, computation)
        )
        assert is_error_free(run)

    def test_word_is_output_in_order(self, compiled, computation):
        run = compiled.transducer.run(
            {}, simulation_inputs(compiled, computation)
        )
        letters = []
        for output in run.outputs:
            for name in output.schema.names:
                if name.startswith("p_") and output[name]:
                    letters.append(name[2:])
        assert letters == list(computation[-1][1].word())

    def test_prefix_output(self, compiled, computation):
        run = compiled.transducer.run(
            {}, simulation_inputs(compiled, computation, output_length=1)
        )
        assert is_error_free(run)
        emitted = [
            name
            for output in run.outputs
            for name in output.schema.names
            if name.startswith("p_") and output[name]
        ]
        assert emitted == ["p_x"]

    def test_corrupted_configuration_detected(self, compiled, computation):
        import copy

        steps = simulation_inputs(compiled, computation)
        bad = copy.deepcopy(steps)
        for step in bad:
            if "move" in step:
                row = next(iter(step["tape"]))
                step["tape"].discard(row)
                step["tape"].add(
                    (row[0], row[1], row[2], "y" if row[3] != "y" else "x", row[4])
                )
                break
        run = compiled.transducer.run({}, bad)
        assert not is_error_free(run)

    def test_wrong_move_detected(self, compiled, computation):
        import copy

        bad = copy.deepcopy(simulation_inputs(compiled, computation))
        for step in bad:
            if "move" in step:
                step["move"] = {(99,)}
                break
        assert not is_error_free(compiled.transducer.run({}, bad))

    def test_skipped_stage_detected(self, compiled, computation):
        steps = simulation_inputs(compiled, computation)
        tape_len = len(computation[0][1].tape)
        assert not is_error_free(
            compiled.transducer.run({}, steps[tape_len:])
        )

    def test_reordered_cells_detected(self, compiled, computation):
        # Reading the output word out of order trips the cell rules.
        steps = simulation_inputs(compiled, computation)
        # Swap the two stage-3 cell steps.
        stage3 = [i for i, s in enumerate(steps) if "cell" in s]
        assert len(stage3) >= 2
        steps[stage3[0]], steps[stage3[1]] = steps[stage3[1]], steps[stage3[0]]
        assert not is_error_free(compiled.transducer.run({}, steps))

    def test_stamp_reuse_detected(self, compiled, computation):
        import copy

        bad = copy.deepcopy(simulation_inputs(compiled, computation))
        for step in bad:
            if "move" in step:
                step["tape"] = {
                    (0, row[1], row[2], row[3], row[4]) for row in step["tape"]
                }
                break
        assert not is_error_free(compiled.transducer.run({}, bad))

    def test_multi_word_machine(self):
        ntm = word_writer_ntm(["xy", "x"])
        compiled = compile_tm(ntm)
        seen_words = set()
        for trace in ntm.computations(4, 12):
            run = compiled.transducer.run(
                {}, simulation_inputs(compiled, trace)
            )
            assert is_error_free(run)
            letters = tuple(
                name[2:]
                for output in run.outputs
                for name in output.schema.names
                if name.startswith("p_") and output[name]
            )
            seen_words.add(letters)
        assert seen_words == words(["xy", "x"])
