"""End-to-end integration tests: each asserts a headline paper claim
using multiple subsystems together (runtime + symbolic verification)."""

from repro.commerce.models import (
    FIGURE1_INPUTS,
    FIGURE2_INPUTS,
    build_friendly,
    build_short,
    default_database,
)
from repro.verify import Goal, is_goal_reachable, is_valid_log
from repro.verify.containment import pointwise_log_equal


class TestPaperStory:
    """The §2.1 narrative, end to end."""

    def test_figure1_log_validates_and_witnesses_replay(self):
        short = build_short()
        db = default_database()
        run = short.run(db, FIGURE1_INPUTS)
        result = is_valid_log(short, db, run.logs)
        assert result.valid
        assert list(short.run(db, result.witness_inputs).logs) == list(run.logs)

    def test_friendly_customization_story(self):
        """friendly = customer-friendly short; same valid logs; passes
        the syntactic audit; figure-2 logs cross-validate."""
        from repro.commerce import is_syntactically_safe_customization

        short, friendly = build_short(), build_friendly()
        db = default_database()
        assert is_syntactically_safe_customization(short, friendly).safe
        assert pointwise_log_equal(short, friendly, db).contained
        # The figure-2 log of friendly restricted to short's world is a
        # valid short log too (the containment's concrete meaning).
        run = friendly.run(db, FIGURE2_INPUTS)
        assert is_valid_log(short, db, run.logs).valid

    def test_symbolic_and_operational_reachability_agree(self):
        """For every product: the BSR reachability verdict equals a
        bounded operational search by the progress advisor."""
        from repro.commerce import ProgressAdvisor

        short = build_short()
        db = default_database()
        advisor = ProgressAdvisor(short, db)
        for product in ("time", "newsweek", "le_monde", "vogue"):
            symbolic = is_goal_reachable(
                short, db, Goal.atoms(deliver=(product,))
            ).reachable
            operational = (
                advisor.advise({"deliver": {(product,)}}, max_depth=2)
                is not None
            )
            assert symbolic == operational, product

    def test_minimized_log_still_validates_sessions(self):
        """Drop `deliver` from the log (E15 says it is redundant): real
        session logs under the smaller log still validate."""
        from repro.commerce import CatalogGenerator, random_log

        short = build_short()
        reduced = short.with_log(("sendbill", "pay"))
        catalog = CatalogGenerator(seed=13).generate(3)
        _run, logs = random_log(reduced, catalog, 5, seed=8)
        assert is_valid_log(reduced, catalog.as_database(), logs).valid

    def test_guarded_store_rejects_exactly_noncompliant_sessions(self):
        """Theorem 4.1 in the large: enforcement, operational checking,
        and symbolic Tsdi satisfaction agree across a workload."""
        from repro.commerce import CatalogGenerator, SessionGenerator
        from repro.core.acceptors import is_error_free
        from repro.verify import TsdiConjunct, TsdiSentence, enforce_tsdi, satisfies_tsdi

        short = build_short()
        sentence = TsdiSentence.of(
            TsdiConjunct.parse("pay(X,Y)", "price(X,Y)")
        )
        guarded = enforce_tsdi(short, sentence)
        catalog = CatalogGenerator(seed=2).generate(4)
        db = catalog.as_database()
        generator = SessionGenerator(catalog, seed=9, error_rate=0.3)
        for length in (3, 5, 7):
            inputs = generator.session(length)
            run = guarded.run(db, inputs)
            assert is_error_free(run) == satisfies_tsdi(
                guarded, run, sentence, db
            )
