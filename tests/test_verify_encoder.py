"""Direct tests of the shared run encoder (proof machinery of Thm 3.1)."""

import pytest

from repro.datalog.ast import Constant as C
from repro.datalog.ast import Variable as V
from repro.errors import VerificationError
from repro.logic.bsr import decide_bsr
from repro.logic.fol import Bottom, Or, Rel, conjoin
from repro.verify.encoder import (
    RunEncoder,
    decode_input_sequence,
    split_step_relation,
    step_relation,
)


class TestStepRelations:
    def test_roundtrip(self):
        assert split_step_relation(step_relation("order", 3)) == ("order", 3)

    def test_non_step_names(self):
        assert split_step_relation("price") is None
        assert split_step_relation("a@b") is None


class TestFormulas:
    def test_past_expansion(self, short):
        encoder = RunEncoder(short, 3)
        x = V("x")
        formula = encoder.past_formula("order", (x,), 3)
        assert isinstance(formula, Or)
        assert {f.predicate for f in formula.operands} == {
            "order@1",
            "order@2",
        }

    def test_past_at_step_one_is_bottom(self, short):
        encoder = RunEncoder(short, 2)
        assert isinstance(
            encoder.past_formula("order", (V("x"),), 1), Bottom
        )

    def test_past_inclusive_includes_current(self, short):
        encoder = RunEncoder(short, 2)
        formula = encoder.past_formula("order", (V("x"),), 2, inclusive=True)
        assert {f.predicate for f in formula.operands} == {
            "order@1",
            "order@2",
        }

    def test_output_formula_unifies_head(self, short):
        # sendbill(c, d) at step 1 must expand the rule body with X=c,
        # Y=d: order@1(c) ∧ price(c, d) ∧ ¬(past-pay = ⊥ at step 1).
        encoder = RunEncoder(short, 1)
        formula = encoder.output_formula("sendbill", (C("c"), C("d")), 1)
        text = str(formula)
        assert "order@1(c)" in text
        assert "price(c, d)" in text

    def test_step_bounds_checked(self, short):
        encoder = RunEncoder(short, 2)
        with pytest.raises(VerificationError):
            encoder.input_atom("order", (V("x"),), 3)

    def test_non_output_rejected(self, short):
        encoder = RunEncoder(short, 1)
        with pytest.raises(VerificationError):
            encoder.output_formula("order", (V("x"),), 1)


class TestExactContent:
    def test_exact_content_pins_relation(self, short, catalog_db):
        # The axioms for order@1 = {(time,)} have exactly the models
        # whose order@1 is that singleton.
        encoder = RunEncoder(short, 1)
        axiom = encoder.input_content_axiom("order", 1, {("time",)})
        result = decide_bsr(axiom, extra_constants=("time", "other"))
        assert result.satisfiable
        assert result.model.tuples("order@1") == {("time",)}

    def test_exact_content_empty_relation(self, short):
        encoder = RunEncoder(short, 1)
        axiom = encoder.input_content_axiom("order", 1, set())
        contradiction = conjoin(
            [axiom, Rel("order@1", (C("x0"),))]
        )
        assert not decide_bsr(contradiction).satisfiable

    def test_zero_arity_exact_content(self):
        from repro.core.spocus import SpocusTransducer

        t = SpocusTransducer.make({"ping": 0}, {"pong": 0}, rules="pong :- ping;")
        encoder = RunEncoder(t, 1)
        present = encoder.input_content_axiom("ping", 1, {()})
        absent = encoder.input_content_axiom("ping", 1, set())
        assert decide_bsr(present).satisfiable
        assert decide_bsr(absent).satisfiable
        assert not decide_bsr(conjoin([present, absent])).satisfiable

    def test_database_axioms_fix_catalog(self, short, catalog_db):
        encoder = RunEncoder(short, 1)
        db = short.coerce_database(catalog_db)
        axioms = encoder.database_axioms(db)
        wrong = conjoin([axioms, Rel("price", (C("time"), C(99)))])
        assert not decide_bsr(
            wrong, extra_constants=tuple(db.active_domain())
        ).satisfiable


class TestDecoding:
    def test_decode_witness_structure(self, short, catalog_db):
        encoder = RunEncoder(short, 2)
        sentence = conjoin(
            [
                encoder.database_axioms(short.coerce_database(catalog_db)),
                Rel("order@1", (C("time"),)),
                Rel("pay@2", (C("time"), C(55))),
            ]
        )
        result = decide_bsr(
            sentence, extra_constants=("time", 55)
        )
        assert result.satisfiable
        witness = decode_input_sequence(short, 2, result.model)
        assert ("time",) in witness[0]["order"]
        assert ("time", 55) in witness[1]["pay"]


class TestErrorFreeAxioms:
    def test_axioms_forbid_error_bodies(self, short, catalog_db):
        guarded = short.with_extra_rules(
            "error :- pay(X,Y), NOT price(X,Y);",
            extra_outputs={"error": 0},
        )
        encoder = RunEncoder(guarded, 1)
        db = guarded.coerce_database(catalog_db)
        sentence = conjoin(
            [
                encoder.database_axioms(db),
                encoder.error_free_axioms(),
                Rel("pay@1", (C("time"), C(99))),
            ]
        )
        assert not decide_bsr(
            sentence, extra_constants=tuple(db.active_domain() | {99})
        ).satisfiable

    def test_no_error_relation_is_vacuous(self, short):
        encoder = RunEncoder(short, 2)
        axioms = encoder.error_free_axioms()
        assert decide_bsr(
            conjoin([axioms, Rel("order@1", (C("a"),))])
        ).satisfiable
