"""The typed Verifier API: specs, verdicts, traces, online audits.

Covers the PR 4 acceptance criteria:

* every failing Verdict carries a CounterexampleTrace whose replay
  through a fresh PodService deterministically reproduces the recorded
  violating log (hypothesis round-trip over random scripts);
* the OnlineAuditor flags the same violations stepwise that the offline
  Verifier finds on the full log;
* the legacy module-level entry points warn exactly once per process;
* audit counters surface through RuntimeMetrics (merged across shards).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.models import (
    build_buggy_store,
    build_short,
    default_database,
)
from repro.datalog.ast import Variable
from repro.errors import AuditViolation, SpecError, UndecidableError
from repro.logic.fol import And, Forall, Implies, Not, Rel
from repro.pods import PodService, ShardedPodService, StepRequest
from repro.verify import deprecation as deprecation_module
from repro.verify import (
    Goal,
    is_goal_reachable,
    is_valid_log,
    pointwise_log_equal,
)
from repro.verify.api import (
    AllOf,
    AnyOf,
    ErrorFreeness,
    GoalReachability,
    KIND_COUNTEREXAMPLE,
    KIND_WITNESS,
    LogValidity,
    OnlineAuditor,
    TemporalProperty,
    Verifier,
    compile_temporal_violation,
)
from repro.verify.tsdi import TsdiConjunct, TsdiSentence

X, Y = Variable("X"), Variable("Y")

#: "deliver(x) at price y requires a previous pay(x, y)" -- Section 2.1.
PAID_DELIVERY = Forall(
    (X, Y),
    Implies(
        And((Rel("deliver", (X,)), Rel("price", (X, Y)))),
        Rel("past-pay", (X, Y)),
    ),
)

FIGURE1_PREFIX = [
    {"order": {("time",)}},
    {"pay": {("time", 55)}},
]


@pytest.fixture
def verifier(short, catalog_db):
    return Verifier(short, catalog_db)


class TestOfflineVerdicts:
    def test_valid_log_verdict_carries_replaying_witness(
        self, short, catalog_db, verifier
    ):
        log = short.log_of(catalog_db, FIGURE1_PREFIX)
        verdict = verifier.check(LogValidity(log))
        assert verdict.holds and bool(verdict)
        assert verdict.trace is not None
        assert verdict.trace.kind == KIND_WITNESS
        assert verdict.counterexample is None
        assert verdict.trace.reproduces(short, catalog_db)

    def test_forged_log_counterexample_localizes_first_bad_step(
        self, short, catalog_db, verifier
    ):
        log = [
            {name: entry[name] for name in entry.schema.names}
            for entry in short.log_of(catalog_db, FIGURE1_PREFIX)
        ]
        # Unpaid delivery injected at step 2.
        log[1] = dict(log[1])
        log[1]["deliver"] = frozenset({("le_monde",)})
        verdict = verifier.check(LogValidity(tuple(log)))
        assert not verdict.holds
        trace = verdict.counterexample
        assert trace is not None and trace.kind == KIND_COUNTEREXAMPLE
        assert trace.step == 2
        assert len(trace.log) == 1  # the maximal realizable prefix
        assert trace.reproduces(short, catalog_db)

    def test_offline_log_validity_requires_a_log(self, verifier):
        with pytest.raises(SpecError):
            verifier.check(LogValidity())

    def test_temporal_property_holds_on_short_fails_on_buggy(
        self, short, buggy, catalog_db
    ):
        spec = TemporalProperty(PAID_DELIVERY, name="paid delivery")
        assert Verifier(short, catalog_db).check(spec).holds
        verdict = Verifier(buggy, catalog_db).check(spec)
        assert not verdict.holds
        trace = verdict.counterexample
        assert trace is not None and trace.step is not None
        assert trace.reproduces(buggy, catalog_db)

    def test_schema_level_counterexample_carries_witness_database(
        self, buggy
    ):
        verdict = Verifier(buggy).check(TemporalProperty(PAID_DELIVERY))
        assert not verdict.holds
        trace = verdict.counterexample
        assert trace.database is not None
        assert trace.reproduces(buggy)  # replays over the witness db

    def test_reachability_witness_and_dead_prefix(
        self, short, catalog_db, verifier
    ):
        goal = Goal.atoms(deliver=("time",))
        verdict = verifier.check(GoalReachability(goal))
        assert verdict.holds
        assert verdict.trace.kind == KIND_WITNESS
        assert verdict.trace.reproduces(short, catalog_db)
        # A product outside the catalog can never be delivered.
        dead = verifier.check(
            GoalReachability(Goal.atoms(deliver=("vogue",)), prefix=(FIGURE1_PREFIX[0],))
        )
        assert not dead.holds
        trace = dead.counterexample
        assert trace is not None and len(trace) == 1
        assert trace.reproduces(short, catalog_db)

    def test_error_freeness_without_sentence_is_temporal(
        self, short, catalog_db
    ):
        guarded = short.with_extra_rules(
            "error :- pay(X, Y), NOT price(X, Y);",
            extra_outputs={"error": 0},
        )
        verdict = Verifier(guarded, catalog_db).check(ErrorFreeness())
        assert not verdict.holds  # a bad payment is always possible
        assert verdict.counterexample.reproduces(guarded, catalog_db)

    def test_error_freeness_with_tsdi_sentence(self, short, catalog_db):
        # Positive-state-only discipline enforcement (Theorem 4.4 scope).
        guarded = short.with_extra_rules(
            "error :- pay(X, Y), NOT price(X, Y);",
            extra_outputs={"error": 0},
        )
        holds = TsdiSentence.of(TsdiConjunct.parse("pay(X,Y)", "price(X,Y)"))
        assert Verifier(guarded, catalog_db).check(ErrorFreeness(holds)).holds
        # A discipline the error rules do not enforce fails, with a
        # replayable error-free counterexample run.
        fails = TsdiSentence.of(
            TsdiConjunct.parse("pay(X,Y)", "past-order(X)")
        )
        verdict = Verifier(guarded, catalog_db).check(ErrorFreeness(fails))
        assert not verdict.holds
        assert verdict.counterexample.reproduces(guarded, catalog_db)

    def test_error_freeness_rejects_negative_state_error_rules(
        self, catalog_db
    ):
        from repro.commerce.models import build_guarded_store

        guarded = build_guarded_store()
        sentence = TsdiSentence.of(TsdiConjunct.parse("pay(X,Y)", "price(X,Y)"))
        with pytest.raises(UndecidableError):
            Verifier(guarded, catalog_db).check(ErrorFreeness(sentence))

    def test_combinators_aggregate_children(self, short, buggy, catalog_db):
        spec_ok = TemporalProperty(PAID_DELIVERY)
        goal = GoalReachability(Goal.atoms(deliver=("time",)))
        both = Verifier(short, catalog_db).check(AllOf.of(spec_ok, goal))
        assert both.holds and len(both.children) == 2

        on_buggy = Verifier(buggy, catalog_db).check(AllOf.of(goal, spec_ok))
        assert not on_buggy.holds
        assert on_buggy.counterexample is not None
        assert on_buggy.counterexample.reproduces(buggy, catalog_db)

        any_of = Verifier(buggy, catalog_db).check(AnyOf.of(spec_ok, goal))
        assert any_of.holds  # the goal is still reachable on buggy

    def test_containment_facade(self, short, friendly, catalog_db):
        # The paper's short/friendly comparison: pointwise log equality
        # (the partial-log sufficient criterion) holds.
        verdict = Verifier(short, catalog_db).check_containment(
            friendly, pointwise=True
        )
        assert verdict.holds

    def test_containment_counterexample_replays(self, short, catalog_db):
        # A customization that logs an extra delivery diverges.
        eager = short.with_extra_rules(
            "deliver(X) :- order(X), available(X);"
        )
        verdict = Verifier(short, catalog_db).check_containment(
            eager, pointwise=True
        )
        assert not verdict.holds
        trace = verdict.counterexample
        assert trace is not None
        assert trace.reproduces(eager, catalog_db)


class TestCheckRunAndAuditorAgree:
    def test_online_auditor_matches_offline_check_run(
        self, short, buggy, catalog_db
    ):
        specs = [
            LogValidity(),
            TemporalProperty(PAID_DELIVERY, name="paid delivery"),
        ]
        script = [{"order": {("time",)}}, {}, {"pay": {("time", 55)}}]

        auditor = OnlineAuditor(specs, reference=short)
        service = PodService(buggy, catalog_db, auditor=auditor)
        handle = service.create_session("audited")
        for step_inputs in script:
            service.submit(StepRequest(handle, step_inputs))
        online = service.audit_findings()

        offline = Verifier(short, catalog_db)
        for spec in specs:
            verdict = offline.check_run(spec, script, transducer=buggy)
            matching = [f for f in online if f.spec == spec]
            assert (not verdict.holds) == bool(matching)
            if matching:
                assert matching[0].step == verdict.trace.step
        # Both specs are violated at step 2 (unpaid delivery).
        assert sorted({f.step for f in online}) == [2]
        for finding in online:
            assert finding.trace.reproduces(buggy, catalog_db)

    def test_clean_traffic_produces_no_findings(self, short, catalog_db):
        auditor = OnlineAuditor(
            [LogValidity(), TemporalProperty(PAID_DELIVERY)]
        )
        service = PodService(short, catalog_db, auditor=auditor)
        handle = service.create_session("clean")
        for step_inputs in FIGURE1_PREFIX:
            service.submit(StepRequest(handle, step_inputs))
        assert service.audit_findings() == []
        snapshot = service.metrics.snapshot()
        assert snapshot["audited_steps"] == 2
        assert snapshot["audit_checks"] == 4
        assert snapshot["audit_violations"] == 0

    def test_strict_auditor_raises_after_applying_the_step(
        self, short, buggy, catalog_db
    ):
        auditor = OnlineAuditor(
            [TemporalProperty(PAID_DELIVERY)], reference=short, strict=True
        )
        service = PodService(buggy, catalog_db, auditor=auditor)
        handle = service.create_session("strict")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        with pytest.raises(AuditViolation) as excinfo:
            service.submit(StepRequest(handle, {}))
        assert excinfo.value.findings[0].step == 2
        # The violating step was applied and persisted before the raise.
        assert service.session(handle).steps == 2
        assert service.metrics.audit_violations == 1

    def test_goal_reachability_monitor_latches_on_lost_goal(
        self, short, catalog_db
    ):
        # "vogue" is not in the catalog: the goal is dead from step 1.
        auditor = OnlineAuditor(
            [GoalReachability(Goal.atoms(deliver=("vogue",)))]
        )
        service = PodService(short, catalog_db, auditor=auditor)
        handle = service.create_session("progress")
        for step_inputs in FIGURE1_PREFIX:
            service.submit(StepRequest(handle, step_inputs))
        findings = service.audit_findings()
        assert [f.step for f in findings] == [1]  # latched, not repeated

    def test_sharded_service_audits_per_shard_and_merges_metrics(
        self, short, buggy, catalog_db
    ):
        service = ShardedPodService(
            buggy,
            catalog_db,
            shards=2,
            auditor_factory=lambda index: OnlineAuditor(
                [LogValidity()], reference=short
            ),
        )
        handles = [service.create_session(f"c{n}") for n in range(4)]
        for handle in handles:
            service.run_session(handle, [{"order": {("time",)}}, {}])
        findings = service.audit_findings()
        assert {f.session_id for f in findings} == {f"c{n}" for n in range(4)}
        assert service.metrics.audit_violations == len(findings) == 4
        assert service.metrics.audited_steps == 8

    def test_resumed_sessions_keep_log_shaped_audits(
        self, short, buggy, catalog_db, tmp_path
    ):
        def auditor():
            return OnlineAuditor([LogValidity()], reference=short)

        service = PodService(
            buggy, catalog_db, store=str(tmp_path), auditor=auditor()
        )
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        assert service.audit_findings() == []
        del service

        revived = PodService(
            buggy, catalog_db, store=str(tmp_path), auditor=auditor()
        )
        revived.submit(StepRequest("alice", {}))  # unpaid delivery
        findings = revived.audit_findings()
        assert [f.step for f in findings] == [2]
        # The trace carries the resume point, so its replay resumes
        # from a snapshot and reproduces the *full* violating log.
        trace = findings[0].trace
        assert trace.resume_steps == 1 and len(trace.log) == 2
        assert trace.reproduces(buggy, catalog_db)

    def test_keep_logs_off_still_audits_log_validity(
        self, short, buggy, catalog_db
    ):
        # The service retains no logs, but the auditor computes each
        # step's entry itself -- the spec is still enforced.
        auditor = OnlineAuditor([LogValidity()], reference=short)
        service = PodService(
            buggy, catalog_db, keep_logs=False, auditor=auditor
        )
        handle = service.create_session("quiet")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.submit(StepRequest(handle, {}))  # unpaid delivery
        findings = service.audit_findings()
        assert [f.step for f in findings] == [2]
        assert findings[0].trace.reproduces(buggy, catalog_db)

    def test_resume_without_stored_log_rejects_auditing(
        self, short, buggy, catalog_db, tmp_path
    ):
        # A keep_logs=False store kept no history: no finding on the
        # resumed session could carry a replayable trace, so the
        # auditor refuses for every spec shape (not just log-shaped).
        service = PodService(buggy, catalog_db, store=str(tmp_path),
                             keep_logs=False)
        handle = service.create_session("nolog")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        del service
        for spec in (LogValidity(), TemporalProperty(PAID_DELIVERY)):
            revived = PodService(
                buggy,
                catalog_db,
                store=str(tmp_path),
                keep_logs=False,
                auditor=OnlineAuditor([spec], reference=short),
            )
            with pytest.raises(SpecError):
                revived.submit(StepRequest("nolog", {}))

    def test_resume_across_keep_logs_modes_keeps_replayable_traces(
        self, short, buggy, catalog_db, tmp_path
    ):
        # The store kept the log; a keep_logs=False service resuming
        # over it still audits, and traces resume from the snapshot.
        service = PodService(buggy, catalog_db, store=str(tmp_path))
        handle = service.create_session("mixed")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        del service
        revived = PodService(
            buggy,
            catalog_db,
            store=str(tmp_path),
            keep_logs=False,
            auditor=OnlineAuditor([LogValidity()], reference=short),
        )
        revived.submit(StepRequest("mixed", {}))  # unpaid delivery
        findings = revived.audit_findings()
        assert [f.step for f in findings] == [2]
        assert findings[0].trace.resume_steps == 1
        assert findings[0].trace.reproduces(buggy, catalog_db)

    def test_audit_traces_are_self_contained(self, short, buggy, catalog_db):
        auditor = OnlineAuditor([LogValidity()], reference=short)
        service = PodService(buggy, catalog_db, auditor=auditor)
        handle = service.create_session("portable")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.submit(StepRequest(handle, {}))
        trace = service.audit_findings()[0].trace
        # The trace carries the audited database: replaying with only
        # the transducer (e.g. in another process) must reproduce.
        assert trace.database is not None
        assert trace.reproduces(buggy)

    def test_resumed_sessions_recover_reachability_prefix(
        self, catalog_db, tmp_path
    ):
        # The step-1 input forecloses the goal; the auditor only
        # attaches after a restart, so it must reconstruct the
        # pre-restart inputs from the cumulative state.
        from repro.core.spocus import SpocusTransducer

        transducer = SpocusTransducer.make(
            inputs={"a": 1, "b": 1},
            outputs={"win": 1},
            database={"item": 1},
            rules="win(X) :- b(X), item(X), NOT past-a(X);",
            log=("win",),
        )
        database = {"item": {("t",)}}
        spec = GoalReachability(Goal.atoms(win=("t",)))

        service = PodService(transducer, database, store=str(tmp_path))
        handle = service.create_session("foreclosed")
        service.submit(StepRequest(handle, {"a": {("t",)}}))
        del service

        revived = PodService(
            transducer,
            database,
            store=str(tmp_path),
            auditor=OnlineAuditor([spec]),
        )
        revived.submit(StepRequest("foreclosed", {}))
        findings = revived.audit_findings()
        assert [f.step for f in findings] == [2]
        assert "no longer reachable" in findings[0].violation

    def test_monitor_plan_compilation_reaches_metrics(
        self, short, catalog_db
    ):
        auditor = OnlineAuditor([TemporalProperty(PAID_DELIVERY)])
        service = PodService(short, catalog_db, auditor=auditor)
        handle = service.create_session("counted")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        snapshot = service.metrics.snapshot()
        # The monitor's violation plan was compiled (or cache-hit) at
        # register time; that work must show up in the service metrics.
        assert snapshot["plans_compiled"] + snapshot["plan_cache_hits"] >= 2

    def test_any_of_counts_latched_children_as_violating(
        self, short, buggy, catalog_db
    ):
        # After step 2 the LogValidity child latches; the AnyOf must
        # still report step 3, where the temporal child violates again.
        spec = AnyOf.of(LogValidity(), TemporalProperty(PAID_DELIVERY))
        auditor = OnlineAuditor([spec], reference=short)
        service = PodService(buggy, catalog_db, auditor=auditor)
        handle = service.create_session("anyof")
        for step_inputs in [{"order": {("time",)}}, {}, {}]:
            service.submit(StepRequest(handle, step_inputs))
        solo = OnlineAuditor([TemporalProperty(PAID_DELIVERY)])
        solo_service = PodService(buggy, catalog_db, auditor=solo)
        solo_handle = solo_service.create_session("solo")
        for step_inputs in [{"order": {("time",)}}, {}, {}]:
            solo_service.submit(StepRequest(solo_handle, step_inputs))
        assert [f.step for f in service.audit_findings()] == [
            f.step for f in solo_service.audit_findings()
        ] == [2, 3]


class TestTraceRoundTrip:
    """Hypothesis: every verdict trace replays deterministically."""

    products = st.sampled_from(["time", "newsweek", "le_monde"])

    @st.composite
    def scripts(draw):
        steps = draw(st.integers(min_value=1, max_value=3))
        script = []
        ordered = []
        for _ in range(steps):
            inputs = {}
            order = draw(
                st.lists(
                    TestTraceRoundTrip.products, max_size=2, unique=True
                )
            )
            if order:
                inputs["order"] = {(p,) for p in order}
                ordered.extend(order)
            if ordered and draw(st.booleans()):
                paid = draw(st.sampled_from(sorted(set(ordered))))
                from repro.commerce.models import PRICES

                inputs["pay"] = {(paid, PRICES[paid])}
            script.append(inputs)
        return script

    @given(script=scripts(), forge=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_log_validity_round_trip(self, script, forge):
        short = build_short()
        db = default_database()
        log = [
            {name: entry[name] for name in entry.schema.names}
            for entry in short.log_of(db, script)
        ]
        if forge:
            last = dict(log[-1])
            last["deliver"] = frozenset(last["deliver"] | {("vogue",)})
            log[-1] = last
        verdict = Verifier(short, db).check(LogValidity(tuple(log)))
        assert verdict.holds == (not forge)
        trace = verdict.trace
        assert trace is not None
        # The acceptance criterion: replaying the trace through a fresh
        # PodService reproduces the recorded log exactly.
        assert trace.reproduces(short, db)
        if forge:
            assert trace.kind == KIND_COUNTEREXAMPLE
            assert trace.step is not None

    @given(script=scripts())
    @settings(max_examples=8, deadline=None)
    def test_audit_findings_round_trip_on_buggy(self, script):
        short, buggy, db = build_short(), build_buggy_store(), default_database()
        auditor = OnlineAuditor(
            [LogValidity(), TemporalProperty(PAID_DELIVERY)], reference=short
        )
        service = PodService(buggy, db, auditor=auditor)
        handle = service.create_session("fuzzed")
        for step_inputs in script:
            service.submit(StepRequest(handle, step_inputs))
        for finding in service.audit_findings():
            assert finding.trace.reproduces(buggy, db)


class TestViolationCompilation:
    def test_paid_delivery_compiles_to_a_safe_violation_rule(self, short):
        program = compile_temporal_violation(short, PAID_DELIVERY)
        assert program is not None and len(program) == 1
        rule = program.rules[0]
        assert rule.head.predicate == "__violation"
        assert {a.predicate for a in rule.positive_atoms()} == {
            "deliver", "price",
        }
        assert {a.predicate for a in rule.negated_atoms()} == {"past-pay"}

    def test_unsafe_disjunct_falls_back_to_naive(self, short):
        # ∀x deliver(x): the violation ∃x ¬deliver(x) is unsafe.
        formula = Forall((X,), Rel("deliver", (X,)))
        assert compile_temporal_violation(short, formula) is None

    def test_unknown_relation_is_a_spec_error(self, short):
        with pytest.raises(SpecError):
            compile_temporal_violation(
                short, Forall((X,), Not(Rel("nope", (X,))))
            )

    def test_plan_and_naive_monitors_agree(self, short, buggy, catalog_db):
        from repro.verify.api.monitor import TemporalMonitor

        script = [{"order": {("time",)}}, {}, {"pay": {("time", 55)}}]
        for transducer in (short, buggy):
            run = transducer.run(catalog_db, script)
            spec = TemporalProperty(PAID_DELIVERY)
            plan_monitor = TemporalMonitor(
                spec, transducer, transducer.coerce_database(catalog_db)
            )
            assert plan_monitor.plan_backed
            naive_monitor = TemporalMonitor(
                spec, transducer, transducer.coerce_database(catalog_db)
            )
            naive_monitor._program = None  # force the naive path
            verdicts = []
            for index in range(len(run.inputs)):
                stage = Verifier._stage_view(run, index)
                verdicts.append(
                    (
                        bool(plan_monitor.observe(stage)),
                        bool(naive_monitor.observe(stage)),
                    )
                )
            assert all(p == n for p, n in verdicts)


class TestDeprecationShim:
    pytestmark = pytest.mark.filterwarnings(
        "ignore::DeprecationWarning"
    )

    def test_legacy_entry_points_warn_exactly_once_per_process(
        self, short, friendly, catalog_db, monkeypatch
    ):
        monkeypatch.setattr(deprecation_module, "_deprecation_warned", False)
        log = short.log_of(catalog_db, FIGURE1_PREFIX)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            is_valid_log(short, catalog_db, log)
            is_goal_reachable(short, catalog_db, Goal.atoms(deliver=("time",)))
            pointwise_log_equal(short, friendly, catalog_db)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.verify.api" in str(deprecations[0].message)

    def test_new_api_never_warns(self, short, catalog_db, monkeypatch):
        monkeypatch.setattr(deprecation_module, "_deprecation_warned", False)
        log = short.log_of(catalog_db, FIGURE1_PREFIX)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            verifier = Verifier(short, catalog_db)
            verifier.check(LogValidity(log))
            verifier.check(TemporalProperty(PAID_DELIVERY))
            verifier.check_run(LogValidity(), FIGURE1_PREFIX)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
