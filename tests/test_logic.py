"""Tests for the logic substrate: FOL, prenex, SAT, BSR."""

import pytest

from repro.datalog.ast import Constant as C
from repro.datalog.ast import Variable as V
from repro.errors import NotInPrefixClassError, SolverError
from repro.logic import (
    And,
    Eq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Rel,
    Structure,
    classify_prefix,
    conjoin,
    decide_bsr,
    disjoin,
    prenex,
    to_nnf,
)
from repro.logic.bsr import valid_bsr
from repro.logic.fol import BOTTOM, TOP, exists, forall
from repro.logic.sat import SatSolver, solve_clauses, verify_assignment

x, y, z = V("x"), V("y"), V("z")


class TestFol:
    def test_conjoin_flattens(self):
        f = conjoin([Rel("p"), conjoin([Rel("q"), Rel("r")])])
        assert isinstance(f, And) and len(f.operands) == 3

    def test_conjoin_units(self):
        assert conjoin([]) == TOP
        assert conjoin([Rel("p")]) == Rel("p")
        assert conjoin([BOTTOM, Rel("p")]) == BOTTOM

    def test_disjoin_units(self):
        assert disjoin([]) == BOTTOM
        assert disjoin([TOP, Rel("p")]) == TOP

    def test_free_variables(self):
        f = Exists((x,), conjoin([Rel("p", (x, y))]))
        assert f.free_variables() == {y}

    def test_substitute_respects_binding(self):
        f = Exists((x,), Rel("p", (x, y)))
        g = f.substitute({y: C("a"), x: C("b")})
        assert g == Exists((x,), Rel("p", (x, C("a"))))

    def test_constants_collected(self):
        f = conjoin([Rel("p", (C("a"),)), Eq(C(1), y)])
        assert f.constants() == {"a", 1}

    def test_exists_drops_vacuous(self):
        assert exists([x], Rel("p")) == Rel("p")
        assert forall([x], Rel("p", (x,))) == Forall((x,), Rel("p", (x,)))


class TestPrenex:
    def test_nnf_pushes_negation(self):
        f = Not(conjoin([Rel("p"), Rel("q")]))
        nnf = to_nnf(f)
        assert isinstance(nnf, Or)

    def test_nnf_flips_quantifiers(self):
        f = Not(Forall((x,), Rel("p", (x,))))
        nnf = to_nnf(f)
        assert isinstance(nnf, Exists)

    def test_implication_eliminated(self):
        f = Implies(Rel("p"), Rel("q"))
        assert isinstance(to_nnf(f), Or)

    def test_prefix_classification(self):
        f = Exists((x,), Forall((y,), Rel("p", (x, y))))
        assert classify_prefix(prenex(f)) == "exists*forall*"

    def test_conjunction_of_exists_and_forall_is_bsr(self):
        f = conjoin(
            [
                Exists((x,), Rel("p", (x,))),
                Forall((y,), Rel("q", (y,))),
                Exists((z,), Rel("r", (z,))),
            ]
        )
        assert classify_prefix(prenex(f)) == "exists*forall*"

    def test_forall_exists_is_other(self):
        f = Forall((x,), Exists((y,), Rel("p", (x, y))))
        assert classify_prefix(prenex(f)) == "other"

    def test_rectify_renames_apart(self):
        f = conjoin(
            [Exists((x,), Rel("p", (x,))), Exists((x,), Rel("q", (x,)))]
        )
        sentence = prenex(f)
        names = [v.name for _, v in sentence.prefix]
        assert len(names) == len(set(names)) == 2


class TestSat:
    def test_trivial_sat(self):
        assert solve_clauses([[1]]).satisfiable

    def test_trivial_unsat(self):
        assert not solve_clauses([[1], [-1]]).satisfiable

    def test_empty_clause_unsat(self):
        assert not solve_clauses([[]]).satisfiable

    def test_no_clauses_sat(self):
        assert solve_clauses([]).satisfiable

    def test_unit_propagation_chain(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        solution = solve_clauses(clauses)
        assert solution.satisfiable
        assert all(solution.assignment[v] for v in (1, 2, 3, 4))

    def test_propagation_conflict(self):
        assert not solve_clauses([[1], [-1, 2], [-2]]).satisfiable

    def test_tautology_removed(self):
        assert solve_clauses([[1, -1], [2]]).satisfiable

    def test_pigeonhole_3_into_2_unsat(self):
        # Pigeon i in hole j: var 2i + j + 1 for i in 0..2, j in 0..1.
        def var(i, j):
            return 2 * i + j + 1

        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        assert not solve_clauses(clauses).satisfiable

    def test_model_verifies(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solution = solve_clauses(clauses)
        assert solution.satisfiable
        assert verify_assignment(clauses, solution.assignment)

    def test_random_3sat_consistency(self):
        import random

        rng = random.Random(7)
        for trial in range(25):
            n = rng.randint(3, 8)
            clauses = [
                [
                    rng.choice([-1, 1]) * rng.randint(1, n)
                    for _ in range(3)
                ]
                for _ in range(rng.randint(2, 20))
            ]
            solution = SatSolver(clauses, n).solve()
            if solution.satisfiable:
                assert verify_assignment(clauses, solution.assignment)
            else:
                # Brute-force cross-check for small n.
                ok = False
                for mask in range(2**n):
                    assignment = {
                        v: bool(mask >> (v - 1) & 1) for v in range(1, n + 1)
                    }
                    if verify_assignment(clauses, assignment):
                        ok = True
                        break
                assert not ok, f"solver said UNSAT but {clauses} is SAT"


class TestStructures:
    def test_atom_evaluation(self):
        s = Structure.of({"a", "b"}, {"p": {("a",)}})
        assert s.evaluate(Rel("p", (C("a"),)))
        assert not s.evaluate(Rel("p", (C("b"),)))

    def test_quantifiers(self):
        s = Structure.of({"a", "b"}, {"p": {("a",), ("b",)}})
        assert s.evaluate(Forall((x,), Rel("p", (x,))))
        assert s.evaluate(Exists((x,), Rel("p", (x,))))

    def test_equality_una(self):
        s = Structure.of({"a", "b"})
        assert s.evaluate(Eq(C("a"), C("a")))
        assert not s.evaluate(Eq(C("a"), C("b")))

    def test_constant_outside_domain_raises(self):
        s = Structure.of({"a"})
        with pytest.raises(SolverError):
            s.evaluate(Rel("p", (C("zz"),)))

    def test_tuple_outside_domain_rejected(self):
        with pytest.raises(SolverError):
            Structure.of({"a"}, {"p": {("b",)}})


class TestBsr:
    def test_simple_sat_with_model(self):
        f = Exists((x,), Rel("p", (x,)))
        result = decide_bsr(f, verify_model=True)
        assert result.satisfiable
        assert result.model is not None
        assert result.model.evaluate(f)

    def test_simple_unsat(self):
        f = conjoin(
            [Exists((x,), Rel("p", (x,))), Forall((y,), Not(Rel("p", (y,))))]
        )
        assert not decide_bsr(f).satisfiable

    def test_una_distinct_constants(self):
        f = conjoin(
            [
                Rel("p", (C("a"),)),
                Rel("p", (C("b"),)),
                Forall(
                    (x,),
                    Implies(Rel("p", (x,)), Eq(x, C("a"))),
                ),
            ]
        )
        assert not decide_bsr(f).satisfiable

    def test_witness_extraction(self):
        f = Exists((x,), conjoin([Rel("p", (x,)), Not(Eq(x, C("a")))]))
        result = decide_bsr(f, verify_model=True)
        assert result.satisfiable
        witness = next(iter(result.witnesses.values()))
        assert witness != "a"

    def test_equality_between_existentials(self):
        f = Exists(
            (x, y),
            conjoin([Rel("p", (x,)), Rel("q", (y,)), Eq(x, y)]),
        )
        result = decide_bsr(f, verify_model=True)
        assert result.satisfiable

    def test_exists_inside_forall_rejected(self):
        f = Forall((x,), Exists((y,), Rel("p", (x, y))))
        with pytest.raises(NotInPrefixClassError):
            decide_bsr(f)

    def test_free_variables_rejected(self):
        with pytest.raises(SolverError):
            decide_bsr(Rel("p", (x,)))

    def test_extra_constants_enlarge_domain(self):
        f = Exists((x,), Not(Eq(x, C("a"))))
        result = decide_bsr(f, extra_constants=("b",))
        assert result.satisfiable

    def test_validity_check(self):
        tautology = Forall((x,), Or((Rel("p", (x,)), Not(Rel("p", (x,))))))
        assert valid_bsr(tautology)
        contingent = Forall((x,), Rel("p", (x,)))
        assert not valid_bsr(contingent)

    def test_work_budget_enforced(self):
        vars_ = tuple(V(f"u{i}") for i in range(8))
        f = conjoin(
            [Rel("p", (C(i),)) for i in range(10)]
            + [Forall(vars_, Rel("q", vars_))]
        )
        with pytest.raises(SolverError):
            decide_bsr(f, max_work=1000)

    def test_model_checker_cross_validation(self):
        # Randomized: any SAT result's model must satisfy the sentence.
        f = conjoin(
            [
                Exists((x,), conjoin([Rel("p", (x,)), Rel("q", (x,))])),
                Forall(
                    (y,),
                    Implies(Rel("q", (y,)), Or((Rel("p", (y,)), Eq(y, C("a"))))),
                ),
            ]
        )
        decide_bsr(f, verify_model=True)  # raises on mismatch
