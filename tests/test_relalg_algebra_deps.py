"""Tests for the relational algebra, dependencies, and the chase."""

import pytest

from repro.errors import ChaseNonterminationError, EvaluationError, SchemaError
from repro.relalg import (
    FunctionalDependency,
    InclusionDependency,
    chase,
    difference,
    fd_closure,
    implies_fd,
    implies_mixed,
    intersection,
    natural_join,
    product,
    project,
    select,
    union,
    violations_fd,
    violations_ind,
)
from repro.relalg.algebra import antijoin, select_eq, select_eq_cols, semijoin
from repro.relalg.dependencies import parse_fd, parse_ind

R = {("a", 1), ("b", 2), ("a", 3)}
S = {(1, "x"), (2, "y")}


class TestAlgebra:
    def test_select(self):
        assert select(R, lambda t: t[0] == "a") == {("a", 1), ("a", 3)}

    def test_select_eq(self):
        assert select_eq(R, 0, "b") == {("b", 2)}

    def test_select_eq_cols(self):
        rows = {("a", "a"), ("a", "b")}
        assert select_eq_cols(rows, 0, 1) == {("a", "a")}

    def test_project_reorders_and_dedups(self):
        assert project(R, [0]) == {("a",), ("b",)}
        assert project(R, [1, 0]) == {(1, "a"), (2, "b"), (3, "a")}

    def test_product(self):
        assert len(product(R, S)) == len(R) * len(S)

    def test_natural_join(self):
        joined = natural_join(R, S, [(1, 0)])
        assert ("a", 1, 1, "x") in joined
        assert ("b", 2, 2, "y") in joined
        assert len(joined) == 2

    def test_join_no_pairs_is_product(self):
        assert natural_join(R, S, []) == product(R, S)

    def test_semijoin_antijoin_partition(self):
        semi = semijoin(R, S, [(1, 0)])
        anti = antijoin(R, S, [(1, 0)])
        assert semi | anti == frozenset(R)
        assert not (semi & anti)

    def test_union_difference_intersection(self):
        a = {("x",)}
        b = {("y",)}
        assert union(a, b) == {("x",), ("y",)}
        assert difference(union(a, b), b) == frozenset(a)
        assert intersection(a, b) == frozenset()

    def test_arity_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            union({("x",)}, {("y", "z")})


class TestDependencies:
    def test_fd_violations(self):
        fd = FunctionalDependency("R", (0,), 1)
        rows = {("a", 1), ("a", 2), ("b", 3)}
        assert len(violations_fd(rows, fd)) == 1

    def test_fd_holds(self):
        fd = FunctionalDependency("R", (0,), 1)
        assert not violations_fd({("a", 1), ("b", 1)}, fd)

    def test_fd_duplicate_lhs_rejected(self):
        with pytest.raises(SchemaError):
            FunctionalDependency("R", (0, 0), 1)

    def test_ind_violations(self):
        ind = InclusionDependency("R", (0,), "R", (1,))
        rows = {("a", "b"), ("b", "c")}
        # R[1] = {a, b}; R[2] = {b, c}: 'a' missing from R[2].
        assert violations_ind(rows, rows, ind) == [("a", "b")]

    def test_ind_cross_relation(self):
        ind = InclusionDependency("R", (0,), "S", (0,))
        assert not violations_ind({("a",)}, {("a",), ("b",)}, ind)

    def test_ind_width_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            InclusionDependency("R", (0, 1), "R", (0,))

    def test_parse_fd(self):
        fd = parse_fd("R", "13->2")
        assert fd.lhs == (0, 2) and fd.rhs == 1

    def test_parse_ind(self):
        ind = parse_ind("R", "1<=2")
        assert ind.lhs == (0,) and ind.rhs == (1,)


class TestFdClosure:
    def test_reflexive(self):
        assert 0 in fd_closure([0], [])

    def test_transitive(self):
        fds = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("R", (1,), 2),
        ]
        assert fd_closure([0], fds) == {0, 1, 2}

    def test_implies_fd_positive(self):
        fds = [FunctionalDependency("R", (0,), 1)]
        assert implies_fd(fds, FunctionalDependency("R", (0, 2), 1))

    def test_implies_fd_negative(self):
        fds = [FunctionalDependency("R", (0,), 1)]
        assert not implies_fd(fds, FunctionalDependency("R", (1,), 0))

    def test_trivial_fd_implied(self):
        assert implies_fd([], FunctionalDependency("R", (0, 1), 1))


class TestChase:
    def test_fd_chase_merges_nulls(self):
        from repro.relalg.domain import fresh_null

        n1, n2 = fresh_null(), fresh_null()
        result = chase(
            {"R": {("a", n1), ("a", n2)}},
            [FunctionalDependency("R", (0,), 1)],
        )
        assert not result.failed
        assert len(result.tables["R"]) == 1

    def test_fd_chase_fails_on_constant_clash(self):
        result = chase(
            {"R": {("a", 1), ("a", 2)}},
            [FunctionalDependency("R", (0,), 1)],
        )
        assert result.failed

    def test_ind_chase_adds_tuples(self):
        result = chase(
            {"R": {("a", "b")}, "S": set()},
            [InclusionDependency("R", (0,), "S", (0,))],
        )
        assert not result.failed
        assert any(row[0] == "a" for row in result.tables["S"])

    def test_cyclic_ind_chase_does_not_terminate(self):
        # R[1] ⊆ R[2] keeps demanding fresh values forever: the chase is
        # a semi-decision procedure, which is the whole point of the
        # undecidability the paper's reductions build on.
        with pytest.raises(ChaseNonterminationError):
            chase(
                {"R": {("a", "b")}},
                [InclusionDependency("R", (0,), "R", (1,))],
                max_steps=50,
            )

    def test_nonterminating_chase_raises(self):
        # R[2] ⊆ R[1] with an FD forcing fresh values cycles forever:
        # each added row introduces a new null in column 1 that must
        # itself appear in column 1 of another row... use a tight budget.
        deps = [
            InclusionDependency("R", (1,), "R", (0,)),
            FunctionalDependency("R", (0,), 1),
            InclusionDependency("R", (0,), "R", (1,)),
        ]
        with pytest.raises(ChaseNonterminationError):
            chase({"R": {("a", "b"), ("b", "c")}}, deps, max_steps=20)

    def test_implies_mixed_fd_only_agrees_with_closure(self):
        fds = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("R", (1,), 2),
        ]
        candidate = FunctionalDependency("R", (0,), 2)
        assert implies_mixed(fds, candidate, 3) == implies_fd(fds, candidate)

    def test_implies_mixed_negative(self):
        fds = [FunctionalDependency("R", (0,), 1)]
        ind = InclusionDependency("R", (0,), "R", (1,))
        assert not implies_mixed(fds, ind, 2)

    def test_implies_mixed_trivial_ind(self):
        ind = InclusionDependency("R", (0,), "R", (0,))
        assert implies_mixed([], ind, 2)
