"""Tests for the datalog engine: parsing, safety, strata, evaluation."""

import pytest

from repro.datalog import (
    Constant,
    DatalogEngine,
    Variable,
    check_rule_safety,
    evaluate_program,
    is_nonrecursive,
    is_semipositive,
    parse_program,
    parse_rule,
    stratify,
)
from repro.datalog.stratify import evaluation_order
from repro.errors import ParseError, RuleError, SafetyError


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule("p(X) :- q(X, Y)")
        assert rule.head.predicate == "p"
        assert rule.head.arity == 1
        assert len(rule.body) == 1

    def test_negation(self):
        rule = parse_rule("p(X) :- q(X), NOT r(X)")
        assert len(rule.negated_atoms()) == 1

    def test_inequality(self):
        rule = parse_rule("p(X) :- q(X, Y), X <> Y")
        assert len(rule.inequalities()) == 1

    def test_cumulative(self):
        rule = parse_rule("past-order(X) +:- order(X)")
        assert rule.cumulative

    def test_propositional_atoms(self):
        rule = parse_rule("a :- A, NOT past-A")
        assert rule.head.arity == 0

    def test_hyphenated_names(self):
        rule = parse_rule("rebill(X,Y) :- pending-bills, past-order(X), price(X,Y)")
        assert "pending-bills" in rule.body_predicates()

    def test_constants_lowercase(self):
        rule = parse_rule("p(X) :- q(X, abc)")
        atom = rule.positive_atoms()[0]
        assert atom.terms[1] == Constant("abc")

    def test_numbers_and_strings(self):
        rule = parse_rule("p(X) :- q(X, 42, 'hello world')")
        atom = rule.positive_atoms()[0]
        assert atom.terms[1] == Constant(42)
        assert atom.terms[2] == Constant("hello world")

    def test_fact(self):
        rule = parse_rule("p(a)")
        assert rule.body == ()

    def test_program_multiple_rules(self):
        program = parse_program("p(X) :- q(X); r(X) :- p(X);")
        assert len(program) == 2

    def test_comments_ignored(self):
        program = parse_program("# a comment\np(X) :- q(X);")
        assert len(program) == 1

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X) r(X)")

    def test_primed_variables(self):
        rule = parse_rule("v :- r(X, Y), r(X, Y'), Y <> Y'")
        assert Variable("Y'") in rule.body_variables()

    def test_roundtrip_str(self):
        text = "p(X) :- q(X, Y), NOT r(Y)"
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule


class TestSafety:
    def test_safe_rule_passes(self):
        check_rule_safety(parse_rule("p(X) :- q(X)"))

    def test_unbound_head_variable(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("p(X, Y) :- q(X)"))

    def test_unbound_negated_variable(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("p(X) :- q(X), NOT r(Y)"))

    def test_unbound_inequality_variable(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("p(X) :- q(X), X <> Y"))

    def test_negated_only_binding_is_unsafe(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule("p(X) :- NOT q(X)"))

    def test_propositional_rule_is_safe(self):
        check_rule_safety(parse_rule("a :- NOT b"))


class TestStratify:
    def test_nonrecursive_detection(self):
        assert is_nonrecursive(parse_program("p(X) :- q(X); r(X) :- p(X);"))
        assert not is_nonrecursive(parse_program("p(X) :- p(X);"))

    def test_mutual_recursion_detected(self):
        program = parse_program("p(X) :- q(X); q(X) :- p(X);")
        assert not is_nonrecursive(program)

    def test_semipositive(self):
        program = parse_program("p(X) :- e(X), NOT f(X);")
        assert is_semipositive(program)
        bad = parse_program("p(X) :- e(X); q(X) :- NOT p(X), e(X);")
        assert not is_semipositive(bad)

    def test_stratification_layers(self):
        program = parse_program("p(X) :- e(X); q(X) :- e(X), NOT p(X);")
        strata = stratify(program)
        p_level = next(i for i, s in enumerate(strata) if "p" in s)
        q_level = next(i for i, s in enumerate(strata) if "q" in s)
        assert p_level < q_level

    def test_unstratifiable_raises(self):
        program = parse_program("p(X) :- e(X), NOT q(X); q(X) :- e(X), NOT p(X);")
        with pytest.raises(RuleError):
            stratify(program)

    def test_evaluation_order_topological(self):
        program = parse_program("r(X) :- p(X); p(X) :- q(X); q(X) :- e(X);")
        order = evaluation_order(program)
        assert order.index("q") < order.index("p") < order.index("r")


class TestEvaluate:
    def test_join(self):
        program = parse_program("p(X, Z) :- q(X, Y), r(Y, Z);")
        facts = evaluate_program(
            program, {"q": frozenset({(1, 2)}), "r": frozenset({(2, 3)})}
        )
        assert facts["p"] == {(1, 3)}

    def test_negation(self):
        program = parse_program("p(X) :- q(X), NOT r(X);")
        facts = evaluate_program(
            program,
            {"q": frozenset({(1,), (2,)}), "r": frozenset({(2,)})},
        )
        assert facts["p"] == {(1,)}

    def test_inequality(self):
        program = parse_program("p(X, Y) :- q(X), q(Y), X <> Y;")
        facts = evaluate_program(program, {"q": frozenset({(1,), (2,)})})
        assert facts["p"] == {(1, 2), (2, 1)}

    def test_constant_in_head(self):
        program = parse_program("p(done, X) :- q(X);")
        facts = evaluate_program(program, {"q": frozenset({(1,)})})
        assert facts["p"] == {("done", 1)}

    def test_constant_in_body_filters(self):
        program = parse_program("p(X) :- q(X, 5);")
        facts = evaluate_program(
            program, {"q": frozenset({(1, 5), (2, 6)})}
        )
        assert facts["p"] == {(1,)}

    def test_recursion_transitive_closure(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);"
        )
        edges = frozenset({(1, 2), (2, 3), (3, 4)})
        facts = evaluate_program(program, {"e": edges})
        assert (1, 4) in facts["t"]
        assert len(facts["t"]) == 6

    def test_stratified_negation_after_recursion(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y);
            t(X, Z) :- t(X, Y), e(Y, Z);
            unreachable(X, Y) :- node(X), node(Y), NOT t(X, Y), X <> Y;
            """
        )
        facts = evaluate_program(
            program,
            {
                "e": frozenset({(1, 2)}),
                "node": frozenset({(1,), (2,), (3,)}),
            },
        )
        assert (1, 3) in facts["unreachable"]
        assert (1, 2) not in facts["unreachable"]

    def test_propositional(self):
        program = parse_program("a :- A, NOT past-A;")
        facts = evaluate_program(
            program, {"A": frozenset({()}), "past-A": frozenset()}
        )
        assert facts["a"] == {()}

    def test_repeated_variable_in_atom(self):
        program = parse_program("p(X) :- q(X, X);")
        facts = evaluate_program(
            program, {"q": frozenset({(1, 1), (1, 2)})}
        )
        assert facts["p"] == {(1,)}


class TestEvaluateEdgeCases:
    """Edge cases of the indexed evaluator, cross-checked vs the scan path."""

    def both(self, source, facts):
        from repro.datalog import evaluate_program_naive

        program = parse_program(source)
        indexed = evaluate_program(program, facts)
        naive = evaluate_program_naive(program, facts)
        assert indexed == naive
        return indexed

    def test_negated_atom_binding_late(self):
        # The negation's variable Y is bound only by the *last* body atom
        # in written order; the check must wait for it.
        facts = self.both(
            "p(X, Y) :- q(X), NOT r(X, Y), s(Y);",
            {
                "q": frozenset({(1,), (2,)}),
                "s": frozenset({(8,), (9,)}),
                "r": frozenset({(1, 8)}),
            },
        )
        assert facts["p"] == {(1, 9), (2, 8), (2, 9)}

    def test_inequality_constants_both_sides(self):
        facts = self.both(
            "p(X) :- q(X), 1 <> 2; r(X) :- q(X), 3 <> 3;",
            {"q": frozenset({(7,)})},
        )
        assert facts["p"] == {(7,)}
        assert facts["r"] == frozenset()

    def test_inequality_constant_vs_variable(self):
        facts = self.both(
            "p(X) :- q(X), X <> 1;",
            {"q": frozenset({(1,), (2,)})},
        )
        assert facts["p"] == {(2,)}

    def test_empty_relation_in_recursive_stratum(self):
        facts = self.both(
            "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);",
            {"e": frozenset()},
        )
        assert facts["t"] == frozenset()

    def test_recursion_with_empty_side_relation(self):
        facts = self.both(
            """
            t(X, Y) :- e(X, Y);
            t(X, Z) :- t(X, Y), bridge(Y, W), e(W, Z);
            """,
            {"e": frozenset({(1, 2), (2, 3)}), "bridge": frozenset()},
        )
        assert facts["t"] == {(1, 2), (2, 3)}

    def test_negation_of_empty_relation(self):
        facts = self.both(
            "p(X) :- q(X), NOT r(X);",
            {"q": frozenset({(1,)}), "r": frozenset()},
        )
        assert facts["p"] == {(1,)}

    def test_idb_predicate_with_seed_facts(self):
        # Facts supplied for a predicate that also has rules.
        facts = self.both(
            "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), t(Y, Z);",
            {"e": frozenset({(1, 2)}), "t": frozenset({(2, 3)})},
        )
        assert facts["t"] == {(1, 2), (2, 3), (1, 3)}

    def test_repeated_variable_with_partial_binding(self):
        facts = self.both(
            "p(X, Y) :- q(X), r(X, Y, Y);",
            {
                "q": frozenset({(1,), (2,)}),
                "r": frozenset({(1, 5, 5), (1, 5, 6), (2, 7, 7)}),
            },
        )
        assert facts["p"] == {(1, 5), (2, 7)}

    def test_arity_mismatched_facts_tolerated(self):
        # Facts of the wrong arity never match an atom; the indexed
        # path must agree with the scan path instead of crashing on
        # them during index construction.
        facts = self.both(
            "p(X) :- a(Y), q(X, Y);",
            {"a": frozenset({(5,)}), "q": frozenset({(1,), (2, 5)})},
        )
        assert facts["p"] == {(2,)}

    def test_evaluate_over_prebuilt_store(self):
        from repro.relalg import FactStore

        store = FactStore({"q": {(1,), (2,)}})
        program = parse_program("p(X) :- q(X), X <> 1;")
        facts = evaluate_program(program, store)
        assert facts["p"] == {(2,)}
        # The input store is layered over, not mutated.
        assert store.predicates() == {"q"}

    def test_naive_context_manager_routes_program_evaluation(self):
        from repro.datalog.evaluate import _FORCE_NAIVE, naive_evaluation

        assert not _FORCE_NAIVE
        program = parse_program("p(X) :- q(X);")
        with naive_evaluation():
            facts = evaluate_program(program, {"q": frozenset({(1,)})})
        assert facts["p"] == {(1,)}


class TestEngine:
    def test_idb_schema_inferred(self):
        engine = DatalogEngine("p(X, Y) :- q(X), r(Y);")
        assert engine.idb_schema().arity("p") == 2

    def test_inconsistent_head_arity_rejected(self):
        with pytest.raises(RuleError):
            DatalogEngine("p(X) :- q(X); p(X, Y) :- q(X), q(Y);")

    def test_unknown_edb_predicate_rejected(self):
        from repro.relalg import DatabaseSchema

        with pytest.raises(Exception):
            DatalogEngine("p(X) :- mystery(X);", DatabaseSchema.of(q=1))

    def test_evaluate_instance(self):
        from repro.relalg import DatabaseSchema, Instance

        schema = DatabaseSchema.of(q=1)
        engine = DatalogEngine("p(X) :- q(X);", schema)
        result = engine.evaluate(Instance(schema, {"q": {(1,)}}))
        assert result["p"] == {(1,)}
