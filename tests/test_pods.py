"""Tests for the pod service layer: typed API, stores, sharding, shim."""

import warnings

import pytest

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import (
    FIGURE1_INPUTS,
    build_friendly,
    build_short,
    default_database,
)
from repro.commerce.workloads import SessionGenerator, simulate_concurrent_customers
from repro.errors import ReproError, SessionError, ShardError
from repro.pods import (
    InMemoryStore,
    JsonlDirectoryStore,
    PodService,
    RuntimeMetrics,
    SessionHandle,
    ShardedPodService,
    StepRequest,
    merge_snapshots,
    open_store,
    shard_of,
)
import repro.runtime.engine as engine_module
from repro.runtime import MultiSessionEngine


@pytest.fixture
def service():
    return PodService(build_short(), default_database())


def make_scripts(count, length, catalog):
    return {
        f"customer-{n:04d}": SessionGenerator(
            catalog, seed=n, supports_pending_bills=True
        ).session(length)
        for n in range(count)
    }


class TestTypedApi:
    def test_submit_returns_typed_results(self, service):
        handle = service.create_session("alice")
        assert handle == SessionHandle("alice", 0)
        result = service.submit(StepRequest(handle, FIGURE1_INPUTS[0]))
        assert result.session == handle
        assert result.step == 1
        assert result.latency_seconds > 0
        assert ("time", 55) in result.output["sendbill"]

    def test_string_ids_are_accepted_everywhere(self, service):
        service.create_session("alice")
        result = service.submit(StepRequest("alice", FIGURE1_INPUTS[0]))
        assert result.session.session_id == "alice"
        assert service.session("alice").steps == 1
        assert len(service.close_session("alice")) == 1

    def test_submit_batch_matches_run_semantics(self, service):
        handle = service.create_session()
        results = service.submit_batch(
            StepRequest(handle, inputs) for inputs in FIGURE1_INPUTS
        )
        run = build_short().run(default_database(), FIGURE1_INPUTS)
        assert [r.output for r in results] == list(run.outputs)
        assert [r.step for r in results] == [1, 2, 3, 4]

    def test_unknown_session_raises_session_error(self, service):
        with pytest.raises(SessionError, match="no such session"):
            service.submit(StepRequest("ghost", FIGURE1_INPUTS[0]))
        # The runtime error is catchable at the library boundary.
        with pytest.raises(ReproError):
            service.session("ghost")

    def test_duplicate_and_malformed_ids_rejected(self, service):
        service.create_session("alice")
        with pytest.raises(SessionError, match="already exists"):
            service.create_session("alice")
        for bad in ("", "no spaces", "a/b", 7):
            with pytest.raises(SessionError, match="invalid session id"):
                service.create_session(bad)

    def test_generated_ids_are_unique_and_ordered(self, service):
        handles = service.create_sessions(5)
        ids = [handle.session_id for handle in handles]
        assert ids == sorted(set(ids))
        assert service.session_ids() == ids


class TestShardRouting:
    def test_same_id_same_shard_across_instances(self):
        ids = [f"customer-{n}" for n in range(40)]
        first = [shard_of(session_id, 4) for session_id in ids]
        second = [shard_of(session_id, 4) for session_id in ids]
        assert first == second
        assert set(first) == {0, 1, 2, 3}

    def test_service_routing_matches_shard_of(self):
        service = ShardedPodService(
            build_short(), default_database(), shards=4
        )
        for n in range(20):
            handle = service.create_session(f"customer-{n}")
            assert handle.shard == shard_of(handle.session_id, 4)
            assert service.shard_for(handle) == handle.shard

    def test_sessions_live_only_on_their_shard(self):
        service = ShardedPodService(
            build_short(), default_database(), shards=4
        )
        handle = service.create_session("alice")
        for index in range(service.shard_count):
            shard_ids = service.shard(index).session_ids()
            assert ("alice" in shard_ids) == (index == handle.shard)

    def test_stale_handle_raises_shard_error(self):
        service = ShardedPodService(
            build_short(), default_database(), shards=4
        )
        handle = service.create_session("alice")
        stale = SessionHandle("alice", (handle.shard + 1) % 4)
        with pytest.raises(ShardError, match="routes to shard"):
            service.submit(StepRequest(stale, FIGURE1_INPUTS[0]))

    def test_invalid_shard_configuration(self):
        with pytest.raises(ShardError):
            ShardedPodService(build_short(), default_database(), shards=0)
        with pytest.raises(ShardError):
            shard_of("alice", 0)
        service = ShardedPodService(
            build_short(), default_database(), shards=2
        )
        with pytest.raises(ShardError, match="no such shard"):
            service.shard(5)

    def test_sharded_metrics_are_merged(self):
        service = ShardedPodService(
            build_short(), default_database(), shards=3
        )
        for n in range(6):
            service.run_session(
                service.create_session(f"customer-{n}"), FIGURE1_INPUTS[:2]
            )
        merged = service.metrics
        assert merged.sessions_created == 6
        assert merged.steps_executed == 12
        assert merged.steps_executed == sum(
            m.steps_executed for m in service.shard_metrics()
        )
        assert merged.snapshot()["steps_executed"] == 12


class TestStores:
    def test_open_store_coercions(self, tmp_path):
        assert isinstance(open_store(None), InMemoryStore)
        assert isinstance(open_store(tmp_path / "pods"), JsonlDirectoryStore)
        store = InMemoryStore()
        assert open_store(store) is store
        with pytest.raises(SessionError):
            open_store(42)

    def test_in_memory_store_hands_sessions_between_services(self):
        store = InMemoryStore()
        first = PodService(build_short(), default_database(), store=store)
        handle = first.create_session("alice")
        first.run_session(handle, FIGURE1_INPUTS[:2])
        second = PodService(build_short(), default_database(), store=store)
        assert second.stored_session_ids() == ["alice"]
        second.run_session(handle, FIGURE1_INPUTS[2:])
        run = build_short().run(default_database(), FIGURE1_INPUTS)
        assert list(second.session(handle).log().entries) == list(run.logs)

    def test_jsonl_restart_roundtrip_equals_uninterrupted_run(self, tmp_path):
        """Acceptance: stop a JSONL-backed service mid-workload, recreate
        it over the same directory, finish, and get byte-identical
        per-session logs to an uninterrupted in-memory run."""
        transducer = build_friendly()
        catalog = CatalogGenerator(seed=3).generate(25)
        scripts = make_scripts(6, 6, catalog)

        uninterrupted = PodService(transducer, catalog.as_database())
        for session_id in scripts:
            uninterrupted.create_session(session_id)
        uninterrupted.drive(scripts)

        interrupted = PodService(
            transducer, catalog.as_database(), store=tmp_path / "pods"
        )
        for session_id in scripts:
            interrupted.create_session(session_id)
        interrupted.drive(
            {sid: script[:3] for sid, script in scripts.items()}
        )
        del interrupted  # the serving process "dies"

        revived = PodService(
            transducer, catalog.as_database(), store=tmp_path / "pods"
        )
        assert revived.stored_session_ids() == sorted(scripts)
        revived.drive({sid: script[3:] for sid, script in scripts.items()})
        for session_id in scripts:
            assert (
                list(revived.session(session_id).log().entries)
                == list(uninterrupted.session(session_id).log().entries)
            )
            assert (
                revived.session(session_id).state
                == uninterrupted.session(session_id).state
            )
        assert revived.metrics.sessions_resumed == len(scripts)

    def test_jsonl_roundtrip_without_logs(self, tmp_path):
        service = PodService(
            build_short(),
            default_database(),
            store=tmp_path / "pods",
            keep_logs=False,
        )
        handle = service.create_session("alice")
        service.run_session(handle, FIGURE1_INPUTS[:2])
        revived = PodService(
            build_short(),
            default_database(),
            store=tmp_path / "pods",
            keep_logs=False,
        )
        session = revived.session(handle)
        assert session.steps == 2
        assert len(session.log()) == 0
        assert session.state == service.session(handle).state

    def test_resume_with_mismatched_keep_logs_is_rejected(self, tmp_path):
        unlogged = PodService(
            build_short(),
            default_database(),
            store=tmp_path / "pods",
            keep_logs=False,
        )
        handle = unlogged.create_session("alice")
        unlogged.run_session(handle, FIGURE1_INPUTS[:2])
        logged = PodService(
            build_short(), default_database(), store=tmp_path / "pods"
        )
        with pytest.raises(SessionError, match="keep_logs"):
            logged.session(handle)

    def test_closed_sessions_are_not_resumable(self, tmp_path):
        store = JsonlDirectoryStore(tmp_path / "pods")
        service = PodService(build_short(), default_database(), store=store)
        handle = service.create_session("alice")
        service.run_session(handle, FIGURE1_INPUTS[:1])
        service.close_session(handle)
        assert store.load("alice") is None
        assert store.session_ids() == []
        revived = PodService(build_short(), default_database(), store=store)
        with pytest.raises(SessionError, match="no such session"):
            revived.session("alice")
        # The id becomes free again after closing.
        revived.create_session("alice")

    def test_restart_at_step_0_restores_initial_state(self, tmp_path):
        """Regression: a never-stepped session resumes at S_0, not at the
        all-empty state.  Both stores snapshot ``state_facts={}`` before
        the first record_step, so the restore path must rebuild the
        transducer's initial state (which need not be empty)."""
        from repro.core.schema import TransducerSchema
        from repro.core.transducer import FunctionalTransducer
        from repro.relalg.instance import Instance
        from repro.relalg.schema import DatabaseSchema

        schema = TransducerSchema(
            DatabaseSchema.of(ping=1),
            DatabaseSchema.of(seen=1),
            DatabaseSchema.of(echo=1),
            DatabaseSchema.of(),
            (),
        )

        class Seeded(FunctionalTransducer):
            def initial_state(self):
                return Instance(self.schema.state, {"seen": {("seed",)}})

        def make_transducer():
            return Seeded(
                schema,
                lambda inputs, state, db: Instance(
                    schema.state, {"seen": state["seen"] | inputs["ping"]}
                ),
                lambda inputs, state, db: Instance(
                    schema.outputs, {"echo": state["seen"]}
                ),
            )

        for store in (InMemoryStore(), JsonlDirectoryStore(tmp_path / "p")):
            service = PodService(make_transducer(), {}, store=store)
            handle = service.create_session("alice")
            del service  # dies before the session ever stepped
            revived = PodService(make_transducer(), {}, store=store)
            session = revived.session(handle)
            assert session.steps == 0
            assert session.state["seen"] == frozenset({("seed",)})
            # The first step behaves exactly as in an uninterrupted run:
            # the output reads S_0, so the seed row must be visible.
            result = revived.submit(StepRequest(handle, {"ping": {("x",)}}))
            assert result.output["echo"] == frozenset({("seed",)})

    def test_session_ids_scans_without_decoding_facts(
        self, tmp_path, monkeypatch
    ):
        """Regression: deciding resumability must not replay (and decode
        the facts of) every event file -- O(lines), not O(total facts)."""
        import repro.pods.store as store_module

        service = PodService(
            build_short(), default_database(), store=tmp_path / "pods"
        )
        service.create_session("alice")
        service.run_session("alice", FIGURE1_INPUTS[:2])
        service.create_session("bob")  # fresh: created record only
        service.create_session("carol")
        service.run_session("carol", FIGURE1_INPUTS[:1])
        service.close_session("carol")

        def boom(encoded):
            raise AssertionError("session_ids() must not decode facts")

        monkeypatch.setattr(store_module, "_decode_facts", boom)
        assert service.stored_session_ids() == ["alice", "bob"]
        monkeypatch.undo()
        # The cheap scan agrees with the full replay's notion of
        # resumability, and load() itself still decodes.
        assert [
            sid
            for sid in ("alice", "bob", "carol")
            if service.store.load(sid) is not None
        ] == ["alice", "bob"]

    def test_sharded_service_with_per_shard_stores(self, tmp_path):
        transducer = build_friendly()
        catalog = CatalogGenerator(seed=3).generate(25)
        scripts = make_scripts(8, 4, catalog)

        def factory(index):
            return tmp_path / f"shard-{index:02d}"

        first = ShardedPodService(
            transducer, catalog.as_database(), shards=4, store_factory=factory
        )
        for session_id in scripts:
            first.create_session(session_id)
        first.drive({sid: script[:2] for sid, script in scripts.items()})
        del first

        revived = ShardedPodService(
            transducer, catalog.as_database(), shards=4, store_factory=factory
        )
        assert revived.stored_session_ids() == sorted(scripts)
        revived.drive({sid: script[2:] for sid, script in scripts.items()})
        for session_id, script in scripts.items():
            run = transducer.run(catalog.as_database(), script)
            assert (
                list(revived.session(session_id).log().entries)
                == list(run.logs)
            )


class TestWorkloadDriverOnPods:
    def test_sharded_workload_matches_single_engine(self):
        catalog = CatalogGenerator(seed=2).generate(30)
        kwargs = dict(
            sessions=12, steps_per_session=4, seed=5, keep_logs=True
        )
        single = simulate_concurrent_customers(
            build_friendly(), catalog, **kwargs
        )
        sharded = simulate_concurrent_customers(
            build_friendly(), catalog, shards=4, **kwargs
        )
        assert sharded.shards == 4
        assert sharded.total_steps == single.total_steps
        assert sharded.sample_log_lengths == single.sample_log_lengths

    def test_workload_with_persistent_store(self, tmp_path):
        report = simulate_concurrent_customers(
            build_short(),
            CatalogGenerator(seed=2).generate(10),
            sessions=4,
            steps_per_session=3,
            keep_logs=True,
            store_factory=lambda index: tmp_path / f"shard-{index}",
        )
        assert report.total_steps == 12
        store = JsonlDirectoryStore(tmp_path / "shard-0")
        assert store.session_ids() == [f"customer-{n:06d}" for n in range(4)]


class TestEngineShim:
    pytestmark = pytest.mark.filterwarnings(
        "ignore:MultiSessionEngine is deprecated:DeprecationWarning"
    )

    def test_shim_warns_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_deprecation_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MultiSessionEngine(build_short(), default_database())
            MultiSessionEngine(build_short(), default_database())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "PodService" in str(deprecations[0].message)

    def test_shim_parity_with_pr1_behavior(self):
        """The deprecated engine surface produces exactly the outputs,
        logs, and states of the typed service (and of Run)."""
        transducer = build_friendly()
        catalog = CatalogGenerator(seed=3).generate(20)
        scripts = [
            SessionGenerator(
                catalog, seed=s, supports_pending_bills=True
            ).session(5)
            for s in range(4)
        ]
        engine = MultiSessionEngine(transducer, catalog.as_database())
        workload = {engine.create_session(): script for script in scripts}
        assert sorted(workload) == [0, 1, 2, 3]
        engine.drive(workload, round_robin=True)
        for session_id, script in workload.items():
            run = transducer.run(catalog.as_database(), script)
            assert (
                list(engine.session(session_id).log().entries)
                == list(run.logs)
            )
            assert engine.session(session_id).state == run.last_state
        assert engine.metrics.steps_executed == 20
        # Logs returned by the shim carry the PR 1 int ids.
        assert [log.session_id for log in engine.logs()] == [0, 1, 2, 3]
        closed = engine.close_session(2)
        assert closed.session_id == 2

    def test_shim_is_a_thin_client_of_pod_service(self):
        engine = MultiSessionEngine(build_short(), default_database())
        session_id = engine.create_session()
        engine.step(session_id, FIGURE1_INPUTS[0])
        assert isinstance(engine.service, PodService)
        assert engine.service.metrics is engine.metrics
        assert engine.service.session_ids() == [f"{session_id:08d}"]

    def test_shim_unknown_session_raises_session_error(self):
        engine = MultiSessionEngine(build_short(), default_database())
        with pytest.raises(SessionError):
            engine.step(99, FIGURE1_INPUTS[0])


class TestMergedMetrics:
    def test_merged_sums_counts_and_combines_extremes(self):
        first, second = RuntimeMetrics(), RuntimeMetrics()
        first.record_session()
        first.record_step(0.5)
        second.record_session()
        second.record_resume()
        second.record_step(0.1)
        second.record_step(0.9)
        merged = RuntimeMetrics.merged([first, second])
        assert merged.sessions_created == 2
        assert merged.sessions_resumed == 1
        assert merged.steps_executed == 3
        assert merged.step_seconds_min == 0.1
        assert merged.step_seconds_max == 0.9
        assert merged.started_at == min(first.started_at, second.started_at)

    def test_merged_of_nothing_is_empty(self):
        merged = RuntimeMetrics.merged([])
        assert merged.steps_executed == 0
        assert merged.snapshot()["min_step_latency_seconds"] == 0.0

    def test_merge_snapshots_sums_counts_but_maxes_gauges(self):
        first, second = RuntimeMetrics(), RuntimeMetrics()
        first.record_step(0.5)
        second.record_step(0.1)
        one, two = first.snapshot(), second.snapshot()
        # interned_constants is a point-in-time gauge of one shared
        # pool; two snapshots of the same process must not double it.
        one["interned_constants"], two["interned_constants"] = 40, 70
        merged = merge_snapshots([one, two])
        assert merged["steps_executed"] == 2
        assert merged["interned_constants"] == 70


class TestSnapshotCompaction:
    def test_reopen_truncates_to_created_plus_snapshot(self, tmp_path):
        service = PodService(
            build_short(), default_database(), store=tmp_path / "pods"
        )
        handle = service.create_session("alice")
        service.run_session(handle, FIGURE1_INPUTS)
        path = service.store.path_of("alice")
        assert len(path.read_text().splitlines()) == 1 + len(FIGURE1_INPUTS)
        before = service.store.load("alice")
        del service

        reopened = JsonlDirectoryStore(tmp_path / "pods")
        assert len(path.read_text().splitlines()) == 2
        assert reopened.load("alice") == before

    def test_restart_equivalence_after_compaction(self, tmp_path):
        """Acceptance: compaction on restart changes bytes, not behavior
        -- the resumed session finishes with the uninterrupted run's
        exact log and state."""
        transducer = build_friendly()
        catalog = CatalogGenerator(seed=5).generate(25)
        scripts = make_scripts(4, 6, catalog)

        uninterrupted = PodService(transducer, catalog.as_database())
        for session_id in scripts:
            uninterrupted.create_session(session_id)
        uninterrupted.drive(scripts)

        interrupted = PodService(
            transducer, catalog.as_database(), store=tmp_path / "pods"
        )
        for session_id in scripts:
            interrupted.create_session(session_id)
        interrupted.drive({sid: script[:3] for sid, script in scripts.items()})
        del interrupted

        # Reopening the directory compacts every session file ...
        revived = PodService(
            transducer, catalog.as_database(), store=tmp_path / "pods"
        )
        store = revived.store
        for session_id in scripts:
            assert len(store.path_of(session_id).read_text().splitlines()) == 2
        # ... and the runs continue exactly where they stopped.
        revived.drive({sid: script[3:] for sid, script in scripts.items()})
        for session_id in scripts:
            assert (
                list(revived.session(session_id).log().entries)
                == list(uninterrupted.session(session_id).log().entries)
            )
            assert (
                revived.session(session_id).state
                == uninterrupted.session(session_id).state
            )

    def test_compaction_is_idempotent_and_files_stay_appendable(
        self, tmp_path
    ):
        service = PodService(
            build_short(), default_database(), store=tmp_path / "pods"
        )
        handle = service.create_session("alice")
        service.run_session(handle, FIGURE1_INPUTS[:2])
        store = JsonlDirectoryStore(tmp_path / "pods")
        assert store.compact() == 0  # open already compacted it
        before = store.load("alice")

        # New steps append after the snapshot record and replay on top.
        revived = PodService(
            build_short(), default_database(), store=store
        )
        revived.run_session(handle, FIGURE1_INPUTS[2:])
        after = store.load("alice")
        assert after.steps == len(FIGURE1_INPUTS)
        assert len(after.log_facts) == len(FIGURE1_INPUTS)
        assert before.log_facts == after.log_facts[:2]

    def test_compact_skips_closed_and_fresh_sessions(self, tmp_path):
        store = JsonlDirectoryStore(tmp_path / "pods")
        service = PodService(build_short(), default_database(), store=store)
        closed = service.create_session("closed")
        service.run_session(closed, FIGURE1_INPUTS[:2])
        service.close_session(closed)
        service.create_session("fresh")
        assert store.compact() == 0
        assert store.load("closed") is None
        assert store.load("fresh").steps == 0


class TestSessionMigration:
    def test_memory_to_jsonl_round_trip(self, tmp_path):
        from repro.pods import migrate_sessions

        memory = InMemoryStore()
        service = PodService(build_short(), default_database(), store=memory)
        for session_id in ("alice", "bob"):
            service.create_session(session_id)
        service.run_session("alice", FIGURE1_INPUTS[:2])
        service.run_session("bob", FIGURE1_INPUTS[:1])

        jsonl = JsonlDirectoryStore(tmp_path / "pods")
        report = migrate_sessions(memory, jsonl)
        assert report.migrated == ("alice", "bob")
        assert report.skipped == () and report.errors == ()
        back = InMemoryStore()
        assert migrate_sessions(jsonl, back).migrated == ("alice", "bob")
        for session_id in ("alice", "bob"):
            assert back.load(session_id) == memory.load(session_id)

    def test_report_still_compares_as_legacy_id_list(self, tmp_path):
        # The PR 2 call shape keeps working (with a one-time
        # DeprecationWarning): the report compares, iterates, and
        # measures like the bare list of migrated ids.
        from repro.pods import migrate_sessions
        from repro.verify import deprecation

        memory = InMemoryStore()
        service = PodService(build_short(), default_database(), store=memory)
        service.create_session("alice")
        report = migrate_sessions(memory, InMemoryStore())
        deprecation._warned_keys.discard("pods.migration-report-as-list")
        with pytest.warns(DeprecationWarning, match="report.migrated"):
            assert report == ["alice"]
        # Once per process: the second legacy use is silent.
        assert list(report) == ["alice"]
        assert len(report) == 1 and "alice" in report

    def test_migrated_sessions_resume_exactly(self, tmp_path):
        from repro.pods import migrate_sessions

        memory = InMemoryStore()
        service = PodService(build_short(), default_database(), store=memory)
        handle = service.create_session("alice")
        service.run_session(handle, FIGURE1_INPUTS[:2])

        jsonl = JsonlDirectoryStore(tmp_path / "pods")
        migrate_sessions(memory, jsonl)
        moved = PodService(build_short(), default_database(), store=jsonl)
        moved.run_session(handle, FIGURE1_INPUTS[2:])
        run = build_short().run(default_database(), FIGURE1_INPUTS)
        assert list(moved.session(handle).log().entries) == list(run.logs)

    def test_collisions_and_unsupported_destinations_raise(self):
        from repro.pods import migrate_sessions

        memory = InMemoryStore()
        service = PodService(build_short(), default_database(), store=memory)
        service.create_session("alice")
        service.create_session("bob")
        target = InMemoryStore()
        target.record_created("bob")
        with pytest.raises(SessionError, match="already exist"):
            migrate_sessions(memory, target)
        # The collision is detected up front: nothing was migrated.
        assert target.session_ids() == ["bob"]
        with pytest.raises(SessionError, match="import_snapshot"):
            migrate_sessions(memory, object())


class TestEvalMetrics:
    def test_plan_and_eval_counters_aggregate(self):
        service = PodService(build_short(), default_database())
        first = service.create_session()
        second = service.create_session()
        service.run_session(first, FIGURE1_INPUTS)
        service.run_session(second, FIGURE1_INPUTS[:2])
        metrics = service.metrics
        # One compiled plan shared by both sessions (possibly compiled
        # by an earlier test: the cache is process-wide).  Each cache
        # rehydration rebuilds a step context, which re-fetches the
        # plan -- so under a REPRO_MAX_RESIDENT bound the count grows
        # by exactly the rehydrations.
        assert (
            metrics.plans_compiled + metrics.plan_cache_hits
            == 2 + metrics.sessions_rehydrated
        )
        assert metrics.full_rule_evals > 0
        snapshot = metrics.snapshot()
        assert {
            "plans_compiled",
            "plan_cache_hits",
            "full_rule_evals",
            "delta_rule_evals",
            "delta_rules_skipped",
            "static_cache_hits",
        } <= set(snapshot)

    def test_delta_counters_fire_for_state_only_rules(self):
        from repro.core.spocus import SpocusTransducer

        transducer = SpocusTransducer.make(
            inputs={"add": 1},
            outputs={"seen": 1, "known": 2},
            database={"db": 2},
            rules="seen(X) :- add(X);"
                  "known(X, Y) :- past-add(X), db(X, Y);",
        )
        service = PodService(
            transducer, {"db": {("a", "b"), ("b", "c")}}
        )
        handle = service.create_session()
        for value in ("a", "b", "a"):
            service.submit(StepRequest(handle, {"add": {(value,)}}))
        metrics = service.metrics
        # The output of step i sees the state cumulated through step
        # i-1: step 1 evaluates 'known' in full (empty cache), steps 2
        # and 3 extend it from the past-add deltas {a} and {b}.
        assert metrics.delta_rule_evals == 2
        assert metrics.delta_rules_skipped == 0
        # Step 3 re-added 'a', so step 4 sees unchanged state and the
        # rule is skipped outright -- yet still answers from cache.
        result = service.submit(StepRequest(handle, {"add": {("c",)}}))
        assert service.metrics.delta_rules_skipped == 1
        assert result.output["known"] == frozenset(
            {("a", "b"), ("b", "c")}
        )
