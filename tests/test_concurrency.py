"""Concurrent submit_batch: equivalence with serial execution.

The tentpole guarantee of the concurrency layer is *observational
transparency*: ``submit_batch(requests, concurrency=N)`` produces, for
every session, exactly the results, logs, final states, and persisted
snapshots of serial execution -- for random interleaved multi-session
workloads (hypothesis), through a JSONL-store restart, and under both
non-strict and strict online audits.  Strict audits stopping a batch
midway attach the completed results to the raised
:class:`~repro.errors.AuditViolation` with per-session prefix ordering
guaranteed under both execution modes.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.catalog import Catalog, CatalogGenerator
from repro.commerce.models import (
    FIGURE1_INPUTS,
    build_buggy_store,
    build_friendly,
    build_short,
    default_database,
)
from repro.commerce.workloads import SessionGenerator
from repro.errors import AuditViolation, SessionError, ShardError
from repro.pods import (
    CONCURRENCY_ENV,
    PodService,
    SessionHandle,
    ShardedPodService,
    StepRequest,
    batch_concurrency,
)
from repro.verify.api import LogValidity, OnlineAuditor

CATALOG = CatalogGenerator(seed=11).generate(20)
# The Figure 1 catalog (matches default_database()): the audited
# variants run the per-step BSR-backed LogValidity monitor, whose cost
# grows with the domain, so they script against the tiny catalog.
FIGURE1_CATALOG = Catalog(
    ("time", "newsweek", "le_monde"),
    {"time": 55, "newsweek": 45, "le_monde": 350},
    frozenset(("time", "newsweek", "le_monde")),
)


def scripts_for(counts, seed, catalog=CATALOG, pending_bills=True):
    """One seeded shopping script per session, lengths from ``counts``.

    ``pending_bills=False`` restricts the scripts to order/pay steps
    (the input schema of the SHORT/buggy stores).
    """
    return {
        f"customer-{index:02d}": SessionGenerator(
            catalog, seed=seed * 1_000_003 + index,
            supports_pending_bills=pending_bills,
        ).session(count)
        for index, count in enumerate(counts)
    }


def batch_of(scripts, order):
    """An interleaved batch: ``order`` names sessions, scripts feed steps."""
    ids = sorted(scripts)
    cursors = {session_id: 0 for session_id in ids}
    batch = []
    for index in order:
        session_id = ids[index]
        batch.append(
            StepRequest(session_id, scripts[session_id][cursors[session_id]])
        )
        cursors[session_id] += 1
    return batch


def run_batch(service, scripts, batch, concurrency):
    for session_id in scripts:
        service.create_session(session_id)
    return service.submit_batch(batch, concurrency=concurrency)


def assert_equivalent(serial, concurrent, scripts, serial_results, results):
    assert [r.step for r in results] == [r.step for r in serial_results]
    assert [r.output for r in results] == [r.output for r in serial_results]
    assert [r.session for r in results] == [r.session for r in serial_results]
    for session_id in scripts:
        assert (
            list(concurrent.session(session_id).log().entries)
            == list(serial.session(session_id).log().entries)
        )
        assert (
            concurrent.session(session_id).state
            == serial.session(session_id).state
        )


@st.composite
def workloads(draw):
    """(per-session step counts, interleaving, generator seed)."""
    counts = draw(
        st.lists(st.integers(0, 5), min_size=1, max_size=4)
    )
    multiset = [i for i, count in enumerate(counts) for _ in range(count)]
    order = draw(st.permutations(multiset))
    seed = draw(st.integers(0, 999))
    return counts, list(order), seed


class TestConcurrentEqualsSerial:
    def test_fixed_workload_all_concurrency_levels(self):
        scripts = scripts_for([4, 4, 4, 4, 4, 4], seed=3)
        order = [i for step in range(4) for i in range(6)]
        serial = PodService(build_friendly(), CATALOG.as_database())
        serial_results = run_batch(
            serial, scripts, batch_of(scripts, order), concurrency=1
        )
        for concurrency in (2, 8):
            service = PodService(build_friendly(), CATALOG.as_database())
            results = run_batch(
                service, scripts, batch_of(scripts, order), concurrency
            )
            assert_equivalent(
                serial, service, scripts, serial_results, results
            )
            assert service.metrics.steps_executed == len(order)

    @settings(max_examples=25, deadline=None)
    @given(workloads())
    def test_random_interleaved_workloads(self, workload):
        counts, order, seed = workload
        scripts = scripts_for(counts, seed)
        batch = batch_of(scripts, order)
        serial = PodService(build_friendly(), CATALOG.as_database())
        concurrent = PodService(build_friendly(), CATALOG.as_database())
        serial_results = run_batch(serial, scripts, batch, concurrency=1)
        results = run_batch(concurrent, scripts, batch, concurrency=3)
        assert_equivalent(serial, concurrent, scripts, serial_results, results)

    @settings(max_examples=10, deadline=None)
    @given(workloads())
    def test_jsonl_store_restart_roundtrip(self, workload):
        """Concurrent stepping persists the exact serial snapshots, and a
        service revived over the directory finishes with the logs of an
        uninterrupted serial run."""
        counts, order, seed = workload
        scripts = scripts_for(counts, seed)
        batch = batch_of(scripts, order)
        serial = PodService(build_friendly(), CATALOG.as_database())
        run_batch(serial, scripts, batch, concurrency=1)
        with tempfile.TemporaryDirectory() as scratch:
            directory = Path(scratch) / "pods"
            concurrent = PodService(
                build_friendly(), CATALOG.as_database(), store=directory
            )
            run_batch(concurrent, scripts, batch, concurrency=4)
            for session_id in scripts:
                assert (
                    concurrent.store.load(session_id)
                    == serial.store.load(session_id)
                )
            del concurrent  # the serving process "dies"
            revived = PodService(
                build_friendly(), CATALOG.as_database(), store=directory
            )
            for session_id in scripts:
                assert (
                    list(revived.session(session_id).log().entries)
                    == list(serial.session(session_id).log().entries)
                )
                assert (
                    revived.session(session_id).state
                    == serial.session(session_id).state
                )

    @settings(max_examples=10, deadline=None)
    @given(workloads())
    def test_audited_non_strict_matches_serial(self, workload):
        """A (non-strict) auditor over the drifting store records the same
        findings under serial and concurrent execution."""
        counts, order, seed = workload
        scripts = scripts_for(
            counts, seed, catalog=FIGURE1_CATALOG, pending_bills=False
        )
        batch = batch_of(scripts, order)
        short = build_short()

        def audited_service():
            return PodService(
                build_buggy_store(),
                default_database(),
                auditor=OnlineAuditor([LogValidity()], reference=short),
            )

        serial = audited_service()
        concurrent = audited_service()
        serial_results = run_batch(serial, scripts, batch, concurrency=1)
        results = run_batch(concurrent, scripts, batch, concurrency=3)
        assert_equivalent(serial, concurrent, scripts, serial_results, results)

        def digest(findings):
            return sorted(
                (f.session_id, f.step, f.violation) for f in findings
            )

        assert digest(concurrent.audit_findings()) == digest(
            serial.audit_findings()
        )
        for session_id in scripts:
            # Per-session findings arrive in step order either way.
            steps = [
                f.step for f in concurrent.audit_findings(session_id)
            ]
            assert steps == sorted(steps)
        assert (
            concurrent.metrics.audit_checks == serial.metrics.audit_checks
        )

    def test_sharded_service_fans_out_identically(self):
        scripts = scripts_for([3, 3, 3, 3, 3, 3, 3, 3], seed=9)
        order = [i for step in range(3) for i in range(8)]
        batch = batch_of(scripts, order)
        serial = ShardedPodService(
            build_friendly(), CATALOG.as_database(), shards=4
        )
        concurrent = ShardedPodService(
            build_friendly(), CATALOG.as_database(), shards=4
        )
        serial_results = run_batch(serial, scripts, batch, concurrency=1)
        results = run_batch(concurrent, scripts, batch, concurrency=4)
        assert_equivalent(serial, concurrent, scripts, serial_results, results)
        assert concurrent.metrics.steps_executed == len(order)
        assert sum(
            m.steps_executed for m in concurrent.shard_metrics()
        ) == len(order)


class TestStrictAuditPartialResults:
    """AuditViolation mid-batch: completed results ride on the exception."""

    def make_service(self):
        auditor = OnlineAuditor(
            [LogValidity()], reference=build_short(), strict=True
        )
        service = PodService(
            build_buggy_store(), default_database(), auditor=auditor
        )
        service.create_session("alice")
        service.create_session("bob")
        return service

    # alice's empty step 2 makes the buggy store deliver unpaid (an
    # invalid log step); bob's pay-after-order log is valid under SHORT.
    BATCH = [
        StepRequest("alice", {"order": {("time",)}}),
        StepRequest("bob", {"order": {("newsweek",)}}),
        StepRequest("alice", {}),
        StepRequest("bob", {"pay": {("newsweek", 45)}}),
    ]

    def test_serial_prefix_attached(self):
        service = self.make_service()
        with pytest.raises(AuditViolation) as excinfo:
            service.submit_batch(self.BATCH, concurrency=1)
        partial = excinfo.value.partial_results
        assert [r is not None for r in partial] == [True, True, False, False]
        assert partial[0].session == SessionHandle("alice", 0)
        assert partial[1].step == 1
        # The violating step was applied and persisted; bob's last
        # request never ran -- exactly what the store shows.
        assert service.session("alice").steps == 2
        assert service.session("bob").steps == 1
        assert excinfo.value.findings[0].step == 2

    def test_concurrent_per_session_prefixes(self):
        service = self.make_service()
        with pytest.raises(AuditViolation) as excinfo:
            service.submit_batch(self.BATCH, concurrency=2)
        partial = excinfo.value.partial_results
        assert len(partial) == len(self.BATCH)
        # bob's group is unaffected and ran to completion; alice's
        # stopped at the violating request (applied, result discarded).
        assert [r is not None for r in partial] == [True, True, False, True]
        assert partial[3].step == 2
        assert service.session("alice").steps == 2
        assert service.session("bob").steps == 2
        # Ordering guarantee: each session's completed results form a
        # prefix of that session's subsequence, in order.
        for session_id in ("alice", "bob"):
            steps = [
                r.step
                for r, request in zip(partial, self.BATCH)
                if r is not None and request.session == session_id
            ]
            assert steps == list(range(1, len(steps) + 1))

    def test_submit_outside_a_batch_has_no_partial_results(self):
        service = self.make_service()
        service.submit(StepRequest("alice", {"order": {("time",)}}))
        with pytest.raises(AuditViolation) as excinfo:
            service.submit(StepRequest("alice", {}))
        assert excinfo.value.partial_results is None


class TestConcurrencyKnob:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(CONCURRENCY_ENV, raising=False)
        assert batch_concurrency() == 1
        assert batch_concurrency(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CONCURRENCY_ENV, "4")
        assert batch_concurrency() == 4
        assert batch_concurrency(2) == 2  # explicit argument wins

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(SessionError, match=">= 1"):
            batch_concurrency(0)
        monkeypatch.setenv(CONCURRENCY_ENV, "zero")
        with pytest.raises(SessionError, match="need an integer"):
            batch_concurrency()
        monkeypatch.setenv(CONCURRENCY_ENV, "-2")
        service = PodService(build_short(), default_database())
        with pytest.raises(SessionError, match=">= 1"):
            service.submit_batch([])

    def test_env_drives_submit_batch(self, monkeypatch):
        monkeypatch.setenv(CONCURRENCY_ENV, "3")
        scripts = scripts_for([2, 2, 2], seed=5)
        order = [0, 1, 2, 0, 1, 2]
        serial = PodService(build_friendly(), CATALOG.as_database())
        concurrent = PodService(build_friendly(), CATALOG.as_database())
        batch = batch_of(scripts, order)
        monkeypatch.delenv(CONCURRENCY_ENV, raising=False)
        serial_results = run_batch(serial, scripts, batch, concurrency=None)
        monkeypatch.setenv(CONCURRENCY_ENV, "3")
        for session_id in scripts:
            concurrent.create_session(session_id)
        results = concurrent.submit_batch(batch)
        assert_equivalent(serial, concurrent, scripts, serial_results, results)

    def test_non_audit_errors_propagate(self):
        service = PodService(build_short(), default_database())
        service.create_session("alice")
        batch = [
            StepRequest("alice", FIGURE1_INPUTS[0]),
            StepRequest("ghost", FIGURE1_INPUTS[0]),
        ]
        with pytest.raises(SessionError, match="no such session"):
            service.submit_batch(batch, concurrency=2)
        # alice's group was unaffected by the failing ghost group.
        assert service.session("alice").steps == 1

    def test_stale_handle_propagates_from_worker(self):
        service = ShardedPodService(
            build_short(), default_database(), shards=4
        )
        handle = service.create_session("alice")
        stale = SessionHandle("alice", (handle.shard + 1) % 4)
        with pytest.raises(ShardError, match="routes to shard"):
            service.submit_batch(
                [StepRequest(stale, FIGURE1_INPUTS[0])] * 2, concurrency=2
            )
