"""Tests for the deprecated engine shim: sessions, engine, metrics.

The engine is now a compatibility facade over :mod:`repro.pods`; these
tests pin the PR 1 surface (bare-int ids, per-engine metrics) so the
shim keeps behaving exactly like the original implementation.  The
typed service itself is tested in ``test_pods.py``.
"""

import pytest

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import (
    FIGURE1_INPUTS,
    build_friendly,
    build_short,
    default_database,
)
from repro.commerce.workloads import (
    SessionGenerator,
    simulate_concurrent_customers,
)
from repro.errors import SessionError
from repro.runtime import MultiSessionEngine, RuntimeMetrics

pytestmark = pytest.mark.filterwarnings(
    "ignore:MultiSessionEngine is deprecated:DeprecationWarning"
)


@pytest.fixture
def engine():
    return MultiSessionEngine(build_short(), default_database())


class TestSession:
    def test_session_matches_run_semantics(self, engine):
        sid = engine.create_session()
        outputs = engine.run_session(sid, FIGURE1_INPUTS)
        run = build_short().run(default_database(), FIGURE1_INPUTS)
        assert outputs == list(run.outputs)
        assert list(engine.session(sid).log().entries) == list(run.logs)
        assert engine.session(sid).state == run.last_state

    def test_step_counter(self, engine):
        sid = engine.create_session()
        engine.run_session(sid, FIGURE1_INPUTS)
        assert engine.session(sid).steps == len(FIGURE1_INPUTS)

    def test_keep_log_off(self):
        engine = MultiSessionEngine(
            build_short(), default_database(), keep_logs=False
        )
        sid = engine.create_session()
        engine.run_session(sid, FIGURE1_INPUTS)
        assert len(engine.session(sid).log()) == 0
        assert engine.session(sid).steps == len(FIGURE1_INPUTS)


class TestEngine:
    def test_session_ids_are_unique_and_ordered(self, engine):
        ids = engine.create_sessions(5)
        assert ids == sorted(set(ids))
        assert engine.session_ids() == ids

    def test_unknown_session_raises(self, engine):
        with pytest.raises(SessionError):
            engine.step(99, {"order": {("time",)}})

    def test_close_session_returns_log(self, engine):
        sid = engine.create_session()
        engine.step(sid, {"order": {("time",)}})
        log = engine.close_session(sid)
        assert len(log) == 1
        assert sid not in engine.session_ids()
        assert engine.metrics.sessions_closed == 1

    def test_interleaved_equals_sequential(self):
        """Stepping sessions round-robin gives the same per-session runs
        as running each session back to back (session isolation)."""
        transducer = build_friendly()
        catalog = CatalogGenerator(seed=3).generate(20)
        scripts = [
            SessionGenerator(
                catalog, seed=s, supports_pending_bills=True
            ).session(5)
            for s in range(4)
        ]

        interleaved = MultiSessionEngine(transducer, catalog.as_database())
        workload = {
            interleaved.create_session(): script for script in scripts
        }
        interleaved.drive(workload, round_robin=True)

        for (sid, script) in workload.items():
            run = transducer.run(catalog.as_database(), script)
            assert (
                list(interleaved.session(sid).log().entries)
                == list(run.logs)
            )

    def test_step_batch(self, engine):
        first, second = engine.create_sessions(2)
        results = engine.step_batch(
            [
                (first, {"order": {("time",)}}),
                (second, {"order": {("newsweek",)}}),
                (first, {"pay": {("time", 55)}}),
            ]
        )
        assert [sid for sid, _out in results] == [first, second, first]
        assert ("time",) in results[2][1]["deliver"]

    def test_drive_tolerates_empty_sequences(self, engine):
        busy = engine.create_session()
        idle = engine.create_session()
        engine.drive({busy: FIGURE1_INPUTS[:1], idle: []}, round_robin=True)
        assert engine.session(busy).steps == 1
        assert engine.session(idle).steps == 0

    def test_drive_sequential(self, engine):
        workload = {
            engine.create_session(): FIGURE1_INPUTS,
            engine.create_session(): FIGURE1_INPUTS[:2],
        }
        engine.drive(workload, round_robin=False)
        lengths = sorted(len(log) for log in engine.logs())
        assert lengths == [2, 4]


class TestMetrics:
    def test_counters(self, engine):
        sid = engine.create_session()
        engine.run_session(sid, FIGURE1_INPUTS)
        metrics = engine.metrics
        assert metrics.sessions_created == 1
        assert metrics.steps_executed == 4
        assert metrics.step_seconds_total > 0
        assert metrics.step_seconds_min <= metrics.step_seconds_max
        assert metrics.mean_step_latency() > 0

    def test_snapshot_keys_are_stable(self, engine):
        snapshot = engine.metrics.snapshot()
        assert list(snapshot) == sorted(snapshot, key=list(snapshot).index)
        assert {"steps_per_second", "sessions_per_second"} <= set(snapshot)

    def test_empty_metrics(self):
        metrics = RuntimeMetrics()
        assert metrics.mean_step_latency() == 0.0
        assert metrics.snapshot()["min_step_latency_seconds"] == 0.0


class TestWorkloadDriver:
    def test_simulate_concurrent_customers(self):
        report = simulate_concurrent_customers(
            build_friendly(),
            CatalogGenerator(seed=2).generate(30),
            sessions=12,
            steps_per_session=4,
            seed=5,
        )
        assert report.sessions == 12
        assert report.total_steps == 48
        assert report.metrics["steps_executed"] == 48
        assert report.sample_log_lengths == (4, 4, 4, 4)

    def test_workload_is_seed_deterministic(self):
        kwargs = dict(
            sessions=6, steps_per_session=3, seed=11, keep_logs=True
        )
        catalog = CatalogGenerator(seed=2).generate(10)
        first = simulate_concurrent_customers(
            build_short(), catalog, **kwargs
        )
        second = simulate_concurrent_customers(
            build_short(), catalog, **kwargs
        )
        assert first.sample_log_lengths == second.sample_log_lengths
        assert first.total_steps == second.total_steps
