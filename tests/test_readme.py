"""The README's code must actually run.

The top-level README.md quickstart exercises the whole public arc
(transducer -> PodService -> Verifier -> CounterexampleTrace ->
OnlineAuditor) with inline assertions; executing it verbatim keeps the
front-door documentation from rotting when the API moves.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_readme_python_blocks_execute():
    blocks = re.findall(r"```python\n(.*?)```", README.read_text(), re.S)
    assert blocks, "README.md lost its quickstart code block"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
