"""Wire codec: round-trip identity and typed rejection of garbage.

The server's correctness rests on two codec properties.  First,
*round-trip identity*: any facts an instance can hold -- unicode
relation names and values, empty instances, nested tuples -- survive
encode -> JSON -> decode exactly, so the HTTP surface cannot corrupt a
session.  Second, *typed rejection*: a malformed or unknown-version
payload raises :class:`~repro.errors.WireError` (and an error envelope
decodes to the same typed exception the server raised) -- it never
crashes a worker and never surfaces as an untyped exception.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.models import FIGURE1_INPUTS, build_short, default_database
from repro.errors import (
    AuditViolation,
    Backpressure,
    ReproError,
    ServerError,
    SessionError,
    ShardError,
    StoreError,
    WireError,
)
from repro.pods.api import SessionHandle, SessionSnapshot, StepRequest
from repro.pods.service import PodService
from repro.server import wire

# -- strategies ----------------------------------------------------------------

# Values that JSON round-trips exactly; nested tuples exercise the
# list<->tuple recursion of the facts codec.
values = st.recursive(
    st.one_of(
        st.integers(-(10**9), 10**9),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)
rows = st.lists(values, max_size=4).map(tuple)
facts = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.frozensets(rows, max_size=5),
    max_size=4,
)
session_ids = st.text(min_size=1, max_size=20)


def json_round_trip(payload):
    """Exactly what HTTP does to a message."""
    return json.loads(json.dumps(payload))


# -- round-trip identity -------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(facts=facts, session_id=session_ids, shard=st.integers(0, 64))
    def test_step_request_with_handle(self, facts, session_id, shard):
        request = StepRequest(SessionHandle(session_id, shard), facts)
        body = json_round_trip(wire.encode_step_request(request))
        decoded = wire.decode_step_request(body)
        assert decoded.session == request.session
        assert decoded.inputs == {
            name: frozenset(rows) for name, rows in facts.items()
        }

    @settings(max_examples=25, deadline=None)
    @given(facts=facts, session_id=session_ids)
    def test_step_request_with_bare_id(self, facts, session_id):
        request = StepRequest(session_id, facts)
        decoded = wire.decode_step_request(
            json_round_trip(wire.encode_step_request(request))
        )
        assert decoded.session == session_id

    @settings(max_examples=50, deadline=None)
    @given(
        session_id=session_ids,
        steps=st.integers(0, 10**6),
        state=facts,
        logs=st.lists(facts, max_size=3),
    )
    def test_snapshot(self, session_id, steps, state, logs):
        snapshot = SessionSnapshot(session_id, steps, state, tuple(logs))
        decoded = wire.decode_snapshot(
            json_round_trip(wire.encode_snapshot(snapshot))
        )
        assert decoded.session_id == session_id
        assert decoded.steps == steps
        assert decoded.state_facts == dict(state)
        assert list(decoded.log_facts) == [dict(entry) for entry in logs]

    def test_step_result_round_trip(self):
        """Real results (typed Instance outputs) survive the wire."""
        service = PodService(build_short(), default_database())
        handle = service.create_session("wire-rt")
        results = service.run_session(handle, FIGURE1_INPUTS)
        outputs = build_short().schema.outputs
        for result in results:
            decoded = wire.decode_step_result(
                json_round_trip(wire.encode_step_result(result)), outputs
            )
            assert decoded.step == result.step
            assert decoded.output == result.output
            assert decoded.session.session_id == "wire-rt"

    @settings(max_examples=25, deadline=None)
    @given(session_id=session_ids, shard=st.integers(0, 1024))
    def test_handle(self, session_id, shard):
        handle = SessionHandle(session_id, shard)
        assert (
            wire.decode_handle(json_round_trip(wire.encode_handle(handle)))
            == handle
        )


# -- typed errors across the wire ----------------------------------------------


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "error, code, status",
        [
            (SessionError("no such session"), "session-error", 400),
            (StoreError("store closed"), "store-error", 500),
            (ShardError("stale handle"), "shard-error", 400),
            (ServerError("worker died"), "server-error", 503),
            (WireError("bad payload"), "wire-error", 400),
            (Backpressure("full"), "backpressure", 429),
            (AuditViolation("violated"), "audit-violation", 409),
        ],
    )
    def test_typed_errors_round_trip(self, error, code, status):
        envelope = json_round_trip(wire.encode_error(error))
        assert envelope["body"]["code"] == code
        assert wire.http_status_of(envelope) == status
        with pytest.raises(type(error)) as caught:
            wire.parse_message(envelope)
        assert str(caught.value) == str(error)

    def test_backpressure_carries_shard_and_depth(self):
        envelope = json_round_trip(
            wire.encode_error(Backpressure("full", shard=3, queue_depth=7))
        )
        with pytest.raises(Backpressure) as caught:
            wire.parse_message(envelope)
        assert caught.value.shard == 3
        assert caught.value.queue_depth == 7

    def test_audit_findings_survive(self):
        finding = wire.WireFinding("alice", 4, "log-validity")
        envelope = json_round_trip(
            wire.encode_error(AuditViolation("bad", findings=(finding,)))
        )
        with pytest.raises(AuditViolation) as caught:
            wire.parse_message(envelope)
        assert caught.value.findings == (finding,)

    def test_unexpected_exception_maps_to_internal(self):
        envelope = wire.encode_error(ValueError("boom"))
        assert envelope["body"]["code"] == "internal"
        with pytest.raises(ServerError):
            wire.parse_message(json_round_trip(envelope))

    def test_unknown_code_decodes_to_server_error(self):
        envelope = wire.message(
            "error", {"code": "flux-capacitor", "message": "??"}
        )
        with pytest.raises(ServerError):
            wire.parse_message(envelope)


# -- malformed payloads never crash, always WireError --------------------------

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-100, 100),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)


class TestMalformed:
    @pytest.mark.parametrize(
        "payload",
        [
            42,
            "hello",
            [],
            None,
            {},
            {"kind": "result", "body": {}},  # no version
            {"v": 2, "kind": "result", "body": {}},  # future version
            {"v": "1", "kind": "result", "body": {}},  # stringly version
            {"v": 1, "body": {}},  # no kind
            {"v": 1, "kind": 7, "body": {}},  # non-string kind
            {"v": 1, "kind": "result"},  # no body
            {"v": 1, "kind": "result", "body": []},  # non-object body
        ],
    )
    def test_rejected_with_wire_error(self, payload):
        with pytest.raises(WireError):
            wire.parse_message(payload)

    def test_kind_mismatch(self):
        with pytest.raises(WireError):
            wire.parse_message(wire.message("pong", {}), expect="result")

    @settings(max_examples=100, deadline=None)
    @given(payload=json_values)
    def test_arbitrary_json_never_crashes(self, payload):
        """Fuzzed payloads either parse or raise a *typed* error --
        the property that keeps a worker alive under garbage input."""
        try:
            wire.parse_message(payload)
        except ReproError:
            pass  # typed: the worker answers with an error envelope

    @settings(max_examples=100, deadline=None)
    @given(body=json_values)
    def test_arbitrary_bodies_never_crash_decoders(self, body):
        for decoder in (
            wire.decode_step_request,
            wire.decode_snapshot,
            wire.decode_handle,
        ):
            try:
                decoder(body)
            except ReproError:
                pass

    def test_malformed_inputs_inside_valid_envelope(self):
        with pytest.raises(WireError):
            wire.decode_step_request({"session": "s", "inputs": 42})
        with pytest.raises(WireError):
            wire.decode_step_request({"session": "s", "inputs": {"r": 5}})
        with pytest.raises(WireError):
            wire.decode_step_request({"inputs": {}})

    def test_malformed_error_body_is_wire_error(self):
        decoded = wire.decode_error(["not", "a", "dict"])
        assert isinstance(decoded, WireError)
