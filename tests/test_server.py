"""The process-level pod server: parity, backpressure, supervision.

The acceptance bar of the server subsystem:

* *parity*: results, logs, states, and snapshots obtained through a
  live HTTP server are byte-identical to an in-process
  :class:`~repro.pods.service.ShardedPodService` over the same traffic
  (fixed scripts and hypothesis-random interleavings);
* *backpressure*: overflowing a worker's admission window is a typed
  :class:`~repro.errors.Backpressure` (HTTP 429) -- never a hang;
* *supervision*: a hard-killed worker is detected, restarted, and
  rehydrated from its write-through store with identical logs;
* *typed errors*: session and audit errors cross the wire as the same
  exception types an in-process caller sees;
* *entry point*: ``python -m repro.server`` starts, serves ``/healthz``,
  and shuts down cleanly on SIGTERM.

Every server in this module binds port 0 (an OS-assigned free port),
so tests never collide.  The module-scoped parity server is shared by
the hypothesis examples -- each example uses fresh, uniquely prefixed
session ids instead of a fresh server, keeping the suite fast.
"""

import itertools
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import (
    build_buggy_store,
    build_friendly,
    build_short,
    default_database,
)
from repro.commerce.workloads import (
    SessionGenerator,
    simulate_concurrent_customers,
)
from repro.errors import (
    AuditViolation,
    Backpressure,
    ServerError,
    SessionError,
)
from repro.pods import ShardedPodService, SqliteStore, StepRequest
from repro.pods.service import PodService
from repro.server import PodClient, PodServer
from repro.verify.api import LogValidity, OnlineAuditor

CATALOG = CatalogGenerator(seed=11).generate(20)

#: Unique session-id prefixes so hypothesis examples can share one
#: server without id collisions.
_PREFIX = itertools.count()


def fresh_prefix() -> str:
    return f"w{next(_PREFIX):04d}"


def scripts_for(counts, seed, prefix):
    return {
        f"{prefix}-customer-{index:02d}": SessionGenerator(
            CATALOG, seed=seed * 1_000_003 + index
        ).session(count)
        for index, count in enumerate(counts)
    }


def batch_of(scripts, order):
    ids = sorted(scripts)
    cursors = dict.fromkeys(ids, 0)
    batch = []
    for index in order:
        session_id = ids[index]
        batch.append(
            StepRequest(session_id, scripts[session_id][cursors[session_id]])
        )
        cursors[session_id] += 1
    return batch


def strict_short_auditor(shard_index):
    """Module-level (picklable) auditor factory for the spawn workers."""
    return OnlineAuditor(
        [LogValidity()], reference=build_short(), strict=True
    )


@pytest.fixture(scope="module")
def parity_server():
    with PodServer(
        build_friendly, CATALOG.as_database(), workers=2, queue_depth=32
    ) as server:
        yield server


@pytest.fixture(scope="module")
def client(parity_server):
    return PodClient(parity_server.url, build_friendly())


# -- serial-vs-server parity ---------------------------------------------------


class TestParity:
    def run_both(self, client, scripts, order, concurrency=None):
        reference = ShardedPodService(
            build_friendly(), CATALOG.as_database(), shards=2
        )
        for session_id in sorted(scripts):
            handle = client.create_session(session_id)
            assert reference.create_session(session_id) == handle
        batch = batch_of(scripts, order)
        expected = reference.submit_batch(batch, concurrency=1)
        results = client.submit_batch(batch, concurrency=concurrency)
        return reference, expected, results

    def assert_equivalent(self, client, reference, scripts, expected, results):
        assert [r.step for r in results] == [r.step for r in expected]
        assert [r.output for r in results] == [r.output for r in expected]
        assert [r.session for r in results] == [r.session for r in expected]
        for session_id in scripts:
            view = client.session(session_id)
            ref = reference.session(session_id)
            assert view.steps == ref.steps
            assert view.state == ref.state
            assert list(view.log().entries) == list(ref.log().entries)
            # Snapshot facts are the persistence bytes: compare them
            # too, not just the typed views.
            assert view.snapshot() == ref.snapshot()

    def test_fixed_interleaved_workload(self, client):
        prefix = fresh_prefix()
        scripts = scripts_for([4, 4, 4], seed=7, prefix=prefix)
        order = [i for _step in range(4) for i in range(3)]
        reference, expected, results = self.run_both(client, scripts, order)
        self.assert_equivalent(client, reference, scripts, expected, results)

    def test_in_worker_concurrency_changes_nothing(self, client):
        prefix = fresh_prefix()
        scripts = scripts_for([3, 3, 3, 3], seed=21, prefix=prefix)
        order = [i for _step in range(3) for i in range(4)]
        reference, expected, results = self.run_both(
            client, scripts, order, concurrency=4
        )
        self.assert_equivalent(client, reference, scripts, expected, results)

    @settings(max_examples=10, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 4), min_size=1, max_size=4),
        seed=st.integers(0, 999),
        data=st.data(),
    )
    def test_random_interleavings(self, client, counts, seed, data):
        multiset = [i for i, count in enumerate(counts) for _ in range(count)]
        order = data.draw(st.permutations(multiset))
        scripts = scripts_for(counts, seed, prefix=fresh_prefix())
        reference, expected, results = self.run_both(
            client, scripts, list(order)
        )
        self.assert_equivalent(client, reference, scripts, expected, results)

    def test_submit_one_at_a_time(self, client):
        prefix = fresh_prefix()
        handle = client.create_session(f"{prefix}-solo")
        reference = ShardedPodService(
            build_friendly(), CATALOG.as_database(), shards=2
        )
        ref_handle = reference.create_session(f"{prefix}-solo")
        script = SessionGenerator(CATALOG, seed=5).session(4)
        for inputs in script:
            got = client.submit(StepRequest(handle, inputs))
            want = reference.submit(StepRequest(ref_handle, inputs))
            assert (got.step, got.output) == (want.step, want.output)

    def test_workload_driver_runs_unchanged(self):
        """simulate_concurrent_customers(service=PodClient) reproduces
        the in-process report over the same seeded traffic."""
        kwargs = dict(
            sessions=6,
            steps_per_session=4,
            seed=3,
            keep_logs=True,
            sample_sessions=3,
        )
        reference = simulate_concurrent_customers(
            build_friendly(), CATALOG, **kwargs
        )
        with PodServer(
            build_friendly, CATALOG.as_database(), workers=2
        ) as server:
            report = simulate_concurrent_customers(
                build_friendly(),
                CATALOG,
                service=PodClient(server.url, build_friendly()),
                **kwargs,
            )
        assert report.sample_log_lengths == reference.sample_log_lengths
        assert report.total_steps == reference.total_steps


# -- observability -------------------------------------------------------------


class TestObservability:
    def test_healthz(self, parity_server, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert [w["shard"] for w in payload["workers"]] == [0, 1]
        assert all(w["alive"] for w in payload["workers"])

    def test_metrics_merge_and_shape(self, client):
        prefix = fresh_prefix()
        handle = client.create_session(f"{prefix}-m")
        client.run_session(
            handle, SessionGenerator(CATALOG, seed=1).session(3)
        )
        payload = client.metrics_payload()
        assert payload["server"]["workers"] == 2
        assert payload["server"]["cpu_count"] == os.cpu_count()
        assert len(payload["per_worker"]) == 2
        merged = payload["pods"]
        assert merged["steps_executed"] == sum(
            row["steps_executed"] for row in payload["per_worker"]
        )
        assert merged["steps_executed"] >= 3
        # metrics.snapshot() duck-types the in-process surface (the
        # elapsed clock advances between fetches, so compare counters)
        live = client.metrics.snapshot()
        assert live["steps_executed"] >= merged["steps_executed"]
        assert live["sessions_created"] == merged["sessions_created"]

    def test_session_ids_and_close(self, client):
        prefix = fresh_prefix()
        handle = client.create_session(f"{prefix}-c")
        script = SessionGenerator(CATALOG, seed=2).session(2)
        client.run_session(handle, script)
        assert f"{prefix}-c" in client.session_ids()
        assert client.has_session(handle)
        log = client.close_session(handle)
        assert len(log.entries) == 2
        assert f"{prefix}-c" not in client.session_ids()

    def test_generated_ids_are_unique(self, client):
        handles = [client.create_session() for _ in range(5)]
        ids = [h.session_id for h in handles]
        assert len(set(ids)) == 5
        for handle in handles:
            assert handle.shard == parity_route(handle.session_id)


def parity_route(session_id: str) -> int:
    from repro.pods.service import shard_of

    return shard_of(session_id, 2)


# -- typed errors over the wire ------------------------------------------------


class TestTypedErrors:
    def test_unknown_session(self, client):
        with pytest.raises(SessionError, match="no such session"):
            client.submit(StepRequest("never-created", {}))

    def test_duplicate_create(self, client):
        session_id = f"{fresh_prefix()}-dup"
        client.create_session(session_id)
        with pytest.raises(SessionError, match="already exists"):
            client.create_session(session_id)

    def test_garbage_body_is_wire_error_429_style(self, parity_server):
        request = urllib.request.Request(
            parity_server.url + "/v1/submit",
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400
        envelope = json.loads(caught.value.read())
        assert envelope["body"]["code"] == "wire-error"

    def test_unknown_wire_version_rejected(self, parity_server):
        request = urllib.request.Request(
            parity_server.url + "/v1/submit",
            data=json.dumps({"v": 99, "kind": "submit", "body": {}}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400
        assert json.loads(caught.value.read())["body"]["code"] == "wire-error"

    def test_unknown_endpoint_is_404(self, parity_server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(
                parity_server.url + "/v1/nonsense", timeout=10
            )
        assert caught.value.code == 404

    def test_audit_violation_crosses_the_wire(self):
        with PodServer(
            build_buggy_store,
            default_database(),
            workers=1,
            auditor_factory=strict_short_auditor,
        ) as server:
            client = PodClient(server.url, build_buggy_store())
            handle = client.create_session("alice")
            client.submit(StepRequest(handle, {"order": {("time",)}}))
            # the buggy store delivers unpaid on an empty step: the
            # strict LogValidity audit rejects it -- typed, with
            # findings, across HTTP.
            with pytest.raises(AuditViolation) as caught:
                client.submit(StepRequest(handle, {}))
            assert caught.value.findings
            assert caught.value.findings[0].session_id == "alice"
            # the violating step was applied and persisted (audit runs
            # after apply), same as in-process semantics
            assert client.session(handle).steps == 2


# -- backpressure --------------------------------------------------------------


class TestBackpressure:
    def test_queue_overflow_is_typed_429_not_a_hang(self):
        with PodServer(
            build_short, default_database(), workers=1, queue_depth=2
        ) as server:
            client = PodClient(server.url, build_short())
            handle = client.create_session("bp")
            worker = server.worker(0)

            # Saturate both admission slots with deliberately slow ops.
            def occupy():
                worker.call("sleep", {"seconds": 1.5})

            threads = [
                threading.Thread(target=occupy, daemon=True)
                for _ in range(2)
            ]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            with pytest.raises(Backpressure) as caught:
                client.submit(StepRequest(handle, {"order": {("time",)}}))
            # rejected fast -- the whole point of admission control
            assert time.monotonic() - started < 1.5
            assert caught.value.shard == 0
            assert caught.value.queue_depth == 2
            for thread in threads:
                thread.join()
            # drained: the same request is admitted and served
            result = client.submit(
                StepRequest(handle, {"order": {("time",)}})
            )
            assert result.step == 1

    def test_backpressure_http_status_is_429(self):
        with PodServer(
            build_short, default_database(), workers=1, queue_depth=1
        ) as server:
            worker = server.worker(0)
            thread = threading.Thread(
                target=lambda: worker.call("sleep", {"seconds": 1.5}),
                daemon=True,
            )
            thread.start()
            time.sleep(0.3)
            body = json.dumps(
                {
                    "v": 1,
                    "kind": "submit",
                    "body": {"session": "bp", "inputs": {}},
                }
            ).encode()
            request = urllib.request.Request(
                server.url + "/v1/submit", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10)
            assert caught.value.code == 429
            envelope = json.loads(caught.value.read())
            assert envelope["body"]["code"] == "backpressure"
            thread.join()


# -- supervision: crash, restart, rehydrate ------------------------------------


class TestSupervision:
    def test_kill_restart_rehydrate_identical_logs(self):
        script = SessionGenerator(CATALOG, seed=9).session(6)
        with PodServer(
            build_friendly, CATALOG.as_database(), workers=1
        ) as server:
            client = PodClient(server.url, build_friendly())
            handle = client.create_session("crashy")
            client.run_session(handle, script[:3])
            worker = server.worker(0)
            first_pid = worker.pid()
            worker.kill()
            assert not worker.alive
            degraded = client.healthz()
            assert degraded["status"] == "degraded"
            # next traffic restarts the worker and rehydrates the
            # session from the write-through store, transparently
            client.run_session(handle, script[3:])
            assert worker.alive and worker.pid() != first_pid
            assert worker.restarts == 1
            assert client.healthz()["status"] == "ok"
            view = client.session(handle)
        reference = PodService(build_friendly(), CATALOG.as_database())
        reference.run_session(reference.create_session("crashy"), script)
        ref = reference.session("crashy")
        assert view.steps == ref.steps
        assert view.state == ref.state
        assert list(view.log().entries) == list(ref.log().entries)

    def test_server_restart_over_same_store_continues(self, tmp_path):
        script = SessionGenerator(CATALOG, seed=12).session(4)
        root = str(tmp_path / "pods")
        with PodServer(
            build_friendly, CATALOG.as_database(), workers=2, store_root=root
        ) as server:
            client = PodClient(server.url, build_friendly())
            handle = client.create_session("durable")
            client.run_session(handle, script[:2])
        with PodServer(
            build_friendly, CATALOG.as_database(), workers=2, store_root=root
        ) as server:
            client = PodClient(server.url, build_friendly())
            client.run_session("durable", script[2:])
            view = client.session("durable")
        reference = PodService(build_friendly(), CATALOG.as_database())
        reference.run_session(reference.create_session("durable"), script)
        assert view.steps == 4
        assert list(view.log().entries) == list(
            reference.session("durable").log().entries
        )

    def test_graceful_shutdown_flushes_sqlite_batched(self, tmp_path):
        root = str(tmp_path / "pods")
        with PodServer(
            build_short,
            default_database(),
            workers=1,
            store_root=root,
            store_kind="sqlite",
            durability="batched",
        ) as server:
            client = PodClient(server.url, build_short())
            handle = client.create_session("flushed")
            client.submit(StepRequest(handle, {"order": {("time",)}}))
        # shutdown drained the worker: the batched write-behind buffer
        # reached the SQLite file before the process exited
        store = SqliteStore(os.path.join(root, "shard-00.sqlite"))
        try:
            snapshot = store.load("flushed")
            assert snapshot is not None and snapshot.steps == 1
        finally:
            store.close()


# -- configuration knobs -------------------------------------------------------


class TestServerKnobs:
    """REPRO_SERVER_* flow through the same validated env helper as
    REPRO_BATCH_CONCURRENCY / REPRO_MAX_RESIDENT."""

    def test_env_knobs_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_WORKERS", "3")
        monkeypatch.setenv("REPRO_SERVER_QUEUE_DEPTH", "5")
        monkeypatch.setenv("REPRO_SERVER_CONCURRENCY", "2")
        server = PodServer(build_short, default_database())  # not started
        assert server.worker_count == 3
        assert server.queue_depth == 5
        assert server.worker_concurrency == 2

    @pytest.mark.parametrize(
        "variable",
        [
            "REPRO_SERVER_WORKERS",
            "REPRO_SERVER_QUEUE_DEPTH",
            "REPRO_SERVER_CONCURRENCY",
        ],
    )
    def test_non_integer_rejected_with_clear_message(
        self, monkeypatch, variable
    ):
        monkeypatch.setenv(variable, "many")
        with pytest.raises(ServerError, match="need an integer"):
            PodServer(build_short, default_database())

    @pytest.mark.parametrize(
        "variable",
        ["REPRO_SERVER_WORKERS", "REPRO_SERVER_QUEUE_DEPTH"],
    )
    def test_below_minimum_rejected(self, monkeypatch, variable):
        monkeypatch.setenv(variable, "0")
        with pytest.raises(ServerError, match=">= 1"):
            PodServer(build_short, default_database())

    def test_explicit_arguments_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_WORKERS", "many")  # never read
        server = PodServer(
            build_short,
            default_database(),
            workers=2,
            queue_depth=7,
            worker_concurrency=3,
        )
        assert server.worker_count == 2
        assert server.queue_depth == 7

    def test_bad_store_kind(self):
        with pytest.raises(ServerError, match="store_kind"):
            PodServer(build_short, default_database(), store_kind="parquet")


# -- the module entry point ----------------------------------------------------


class TestModuleEntryPoint:
    def test_start_healthz_sigterm_clean_exit(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--workers", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            url = line.strip().split()[-1]
            deadline = time.monotonic() + 30
            payload = None
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        url + "/healthz", timeout=5
                    ) as response:
                        payload = json.loads(response.read())
                    break
                except (urllib.error.URLError, OSError):
                    time.sleep(0.2)
            assert payload is not None and payload["body"]["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert "shut down cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
