"""The example scripts run clean -- they can no longer silently rot.

Each example is executed as ``python examples/<name>.py`` in a
subprocess (exactly how the README tells users to run them); a
non-zero exit or a traceback is a test failure.  The scenario-backed
examples (``fraud_detection``, ``guarded_store``, ``scenario_tour``)
are additionally pinned to their registry twins.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: Every example the suite executes end to end.
RUNNABLE = [
    "quickstart.py",
    "fraud_detection.py",
    "guarded_store.py",
    "scenario_tour.py",
    "shadow_tour.py",
]


def _run(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.mark.parametrize("name", RUNNABLE)
def test_example_runs_clean(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr
    assert "Traceback" not in result.stderr


def test_examples_are_registered_as_scenarios():
    from repro.scenarios import scenario_names

    names = scenario_names()
    assert "fraud-detection" in names
    assert "guarded-store" in names
