"""Tests for Theorem 3.1 (log validity) and 3.2 (goal reachability)."""

from repro.datalog.ast import Variable as V
from repro.relalg.instance import Instance
from repro.verify import Goal, is_goal_reachable, is_valid_log


def log_entry(transducer, **facts):
    return Instance(transducer.schema.log_schema, facts)


class TestLogValidity:
    def test_real_run_log_is_valid(self, short, catalog_db, figure1_inputs):
        run = short.run(catalog_db, figure1_inputs)
        result = is_valid_log(short, catalog_db, run.logs)
        assert result.valid
        assert result.witness_inputs is not None

    def test_witness_regenerates_log(self, short, catalog_db, figure1_inputs):
        run = short.run(catalog_db, figure1_inputs)
        result = is_valid_log(short, catalog_db, run.logs)
        replay = short.run(catalog_db, result.witness_inputs)
        assert list(replay.logs) == list(run.logs)

    def test_forged_delivery_rejected(self, short, catalog_db):
        forged = [log_entry(short, deliver={("time",)})]
        assert not is_valid_log(short, catalog_db, forged).valid

    def test_delivery_without_logged_payment_rejected(self, short, catalog_db):
        # deliver requires pay in the same step, and pay is logged: a
        # log showing deliver with an empty pay cannot be generated.
        forged = [
            log_entry(short, sendbill={("time", 55)}),
            log_entry(short, deliver={("time",)}),
        ]
        assert not is_valid_log(short, catalog_db, forged).valid

    def test_payment_then_delivery_valid(self, short, catalog_db):
        entries = [
            log_entry(short, sendbill={("time", 55)}),
            log_entry(short, pay={("time", 55)}, deliver={("time",)}),
        ]
        result = is_valid_log(short, catalog_db, entries)
        assert result.valid

    def test_wrong_price_bill_rejected(self, short, catalog_db):
        forged = [log_entry(short, sendbill={("time", 99)})]
        assert not is_valid_log(short, catalog_db, forged).valid

    def test_empty_log_trivially_valid(self, short, catalog_db):
        assert is_valid_log(short, catalog_db, []).valid

    def test_all_empty_steps_valid(self, short, catalog_db):
        entries = [log_entry(short), log_entry(short)]
        assert is_valid_log(short, catalog_db, entries).valid

    def test_unknown_database_mode(self, short):
        # With the database existentially quantified, a bill for any
        # price is realizable by *some* catalog.
        entries = [log_entry(short, sendbill={("widget", 123)})]
        result = is_valid_log(short, None, entries)
        assert result.valid
        assert result.witness_database is not None
        assert ("widget", 123) in result.witness_database["price"]

    def test_unknown_database_still_rejects_contradictions(self, short):
        # deliver logged while pay (also logged) is empty is impossible
        # under any database.
        entries = [log_entry(short, deliver={("x",)})]
        assert not is_valid_log(short, None, entries).valid

    def test_friendly_session_log_valid(
        self, friendly, catalog_db, figure2_inputs
    ):
        run = friendly.run(catalog_db, figure2_inputs)
        assert is_valid_log(friendly, catalog_db, run.logs).valid

    def test_dict_log_entries_accepted(self, short, catalog_db):
        entries = [{"sendbill": {("time", 55)}, "pay": set(), "deliver": set()}]
        assert is_valid_log(short, catalog_db, entries).valid


class TestGoalReachability:
    def test_deliver_reachable_when_priced(self, short, catalog_db):
        goal = Goal.atoms(deliver=("time",))
        result = is_goal_reachable(short, catalog_db, goal)
        assert result.reachable
        assert result.witness_inputs is not None

    def test_deliver_unreachable_without_price(self, short, catalog_db):
        goal = Goal.atoms(deliver=("vogue",))
        assert not is_goal_reachable(short, catalog_db, goal).reachable

    def test_existential_goal(self, short, catalog_db):
        x = V("x")
        goal = Goal(positive=((("deliver"), (x,)),))
        assert is_goal_reachable(short, catalog_db, goal).reachable

    def test_negative_literal_goal(self, short, catalog_db):
        # Reach a state where time is billed but not delivered.
        goal = Goal(
            positive=(("sendbill", (V("x"), V("y"))),),
            negative=(("deliver", (V("x"),)),),
        )
        assert is_goal_reachable(short, catalog_db, goal).reachable

    def test_contradictory_goal_unreachable(self, short, catalog_db):
        goal = Goal(
            positive=(("deliver", (V("x"),)),),
            negative=(("deliver", (V("x"),)),),
        )
        assert not is_goal_reachable(short, catalog_db, goal).reachable

    def test_witness_replay(self, short, catalog_db):
        goal = Goal.atoms(deliver=("le_monde",))
        result = is_goal_reachable(short, catalog_db, goal)
        assert result.reachable
        run = short.run(catalog_db, result.witness_inputs)
        assert ("le_monde",) in run.last_output["deliver"]

    def test_progress_after_prefix(self, short, catalog_db):
        # After ordering, delivery is still reachable.
        prefix = [{"order": {("time",)}}]
        goal = Goal.atoms(deliver=("time",))
        assert is_goal_reachable(short, catalog_db, goal, prefix).reachable

    def test_goal_with_two_step_dependency(self, short, catalog_db):
        # deliver requires a *prior* order: a fresh one-step run cannot
        # deliver, which is why the witness needs two steps.
        goal = Goal.atoms(deliver=("time",))
        result = is_goal_reachable(short, catalog_db, goal)
        run = short.run(catalog_db, result.witness_inputs)
        assert len(run) == 2
        assert not run.outputs[0]["deliver"]

    def test_unavailable_warning_reachable(self, friendly, catalog_db):
        goal = Goal.atoms(unavailable=("vogue",))
        assert is_goal_reachable(friendly, catalog_db, goal).reachable

    def test_rebill_reachable(self, friendly, catalog_db):
        goal = Goal.atoms(rebill=("time", 55))
        assert is_goal_reachable(friendly, catalog_db, goal).reachable
