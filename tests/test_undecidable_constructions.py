"""Tests for the executable undecidability reductions (Prop 3.1, Thm 3.4)."""

import pytest

from repro.core.acceptors import is_error_free
from repro.relalg.dependencies import (
    FunctionalDependency as FD,
    InclusionDependency as IND,
)
from repro.relalg.chase import implies_fd
from repro.verify import is_valid_log
from repro.verify.undecidable import (
    containment_reduction,
    mimic_inputs_for_log,
    projection_reduction,
    proposition_31_log_valid,
    wellformed_sequence,
)

F_SINGLE = [FD("R", (0,), 1)]
G_IND = [IND("R", (0,), "R", (1,))]


class TestProposition31:
    def test_not_implied_gives_valid_log(self):
        transducer = projection_reduction(2, F_SINGLE, G_IND)
        valid, witness = proposition_31_log_valid(transducer, 2)
        assert valid
        assert witness is not None

    def test_implied_gives_invalid_log(self):
        transducer = projection_reduction(2, F_SINGLE, F_SINGLE)
        valid, _ = proposition_31_log_valid(transducer, 2)
        assert not valid

    def test_fd_implication_agreement(self):
        # For FD-only F and G the question is decidable by Armstrong
        # closure; the reduction must agree on several cases.
        cases = [
            ([FD("R", (0,), 1), FD("R", (1,), 2)], FD("R", (0,), 2), 3),
            ([FD("R", (0,), 1)], FD("R", (1,), 0), 2),
            ([FD("R", (0,), 1)], FD("R", (0, 2), 1), 3),
        ]
        for f_deps, g_dep, arity in cases:
            implied = implies_fd(f_deps, g_dep)
            transducer = projection_reduction(arity, f_deps, [g_dep])
            valid, _ = proposition_31_log_valid(
                transducer, arity, domain_size=3, max_tuples=2
            )
            assert valid == (not implied), (f_deps, g_dep)

    def test_transducer_state_stores_projections(self):
        transducer = projection_reduction(2, F_SINGLE, G_IND)
        run = transducer.run({}, [{"R": {("u", "v")}}])
        assert run.states[0]["past-R2"] == {("v",)}


class TestTheorem34:
    @pytest.fixture(scope="class")
    def reduction(self):
        return containment_reduction(2, F_SINGLE, G_IND)

    def test_wellformed_runs_are_clean(self, reduction):
        rows = [("a", "b"), ("c", "d")]
        run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
        assert is_error_free(run)
        assert all(output["ok"] for output in run.outputs)

    def test_violations_reported_at_end(self, reduction):
        # ("a","b"), ("c","a"): satisfies F (keys distinct); violates G
        # since c ∈ R[1] but c ∉ R[2] = {b, a}.
        rows = [("a", "b"), ("c", "a")]
        run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
        final = run.outputs[-1]
        assert not final["violF"]
        assert final["violG"]

    def test_fd_violation_reported(self, reduction):
        rows = [("a", "b"), ("a", "c")]  # violates F = {1 -> 2}
        run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
        assert run.outputs[-1]["violF"]

    def test_malformed_input_flagged(self, reduction):
        # Insert a tuple without registering its coordinates.
        run = reduction.t_fg.run({}, [{"R": {("a", "b")}}])
        assert not is_error_free(run)

    def test_two_tuples_at_once_flagged(self, reduction):
        steps = wellformed_sequence(reduction, [("a", "b")])
        steps[0]["R"] = {("a", "b"), ("c", "d")}
        run = reduction.t_fg.run({}, steps)
        assert not is_error_free(run)

    def test_separating_log_invalid_for_simulator(self, reduction):
        # F does not imply G here, so some well-formed run logs violG
        # without violF -- which the simulator T cannot produce.
        rows = [("a", "b"), ("c", "a")]
        run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
        assert not is_valid_log(reduction.simulator, {}, run.logs).valid

    @pytest.fixture(scope="class")
    def implied_reduction(self):
        # F = {1->2, R[1] ⊆ R[2]}, G = {1->2}: here F ⊨ G, so violG never
        # fires without violF on well-formed runs and every clean log is
        # mimicable by the simulator (the Theorem 3.4 forward direction).
        return containment_reduction(
            2, [FD("R", (0,), 1), IND("R", (0,), "R", (1,))], [FD("R", (0,), 1)]
        )

    def test_clean_logs_mimicable(self, implied_reduction):
        rows = [("a", "a")]
        run = implied_reduction.t_fg.run(
            {}, wellformed_sequence(implied_reduction, rows)
        )
        inputs = mimic_inputs_for_log(run.logs)
        sim = implied_reduction.simulator.run({}, inputs)
        assert list(sim.logs) == list(run.logs)

    def test_fd_violation_logs_mimicable(self, implied_reduction):
        rows = [("a", "a"), ("b", "b"), ("a", "b")]
        run = implied_reduction.t_fg.run(
            {}, wellformed_sequence(implied_reduction, rows)
        )
        assert run.outputs[-1]["violF"]
        inputs = mimic_inputs_for_log(run.logs)
        sim = implied_reduction.simulator.run({}, inputs)
        assert list(sim.logs) == list(run.logs)

    def test_simulator_can_fake_after_error(self, reduction):
        # After outputting error, the simulator may emit violG alone.
        inputs = [
            {"simerror": {()}},
            {"simGp": {()}},
        ]
        run = reduction.simulator.run({}, inputs)
        assert run.outputs[0]["error"]
        assert run.outputs[1]["violG"] and not run.outputs[1]["violF"]

    def test_simulator_ok_controlled_by_simnotok(self, reduction):
        run = reduction.simulator.run({}, [{"simnotok": {()}}, {"simGp": {()}}])
        assert not run.outputs[0]["ok"]
        assert run.outputs[1]["violG"] and not run.outputs[1]["violF"]
