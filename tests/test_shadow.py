"""Shadow-deploy containment audits and the persistent audit ledger.

The acceptance bar of the shadow subsystem:

* *no false positives*: shadowing every registered scenario against an
  identical candidate reports zero divergences and byte-identical log
  digests on both sides;
* *detection*: the deliberately-buggy store candidate yields a
  divergence whose :class:`CounterexampleTrace` replays
  deterministically -- reproducing on the incumbent's transducer and
  failing on the candidate's;
* *containment vs equivalence*: a candidate that logs strictly less
  passes a containment policy and fails a strict one;
* *durability*: findings written through each store backend
  (memory/jsonl/sqlite) are byte-identical after a restart +
  rehydration, ``forget_session`` prunes the ledger, and findings are
  queryable over HTTP (``GET /v1/audits``) across a server restart;
* *amortization*: ``check_every=k`` delays a latching monitor's
  detection to the next multiple of k -- never loses it -- and does
  fewer checks.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.models import (
    build_buggy_store,
    build_short,
    default_database,
)
from repro.errors import ShadowDivergence, SpecError
from repro.pods.api import SessionHandle, StepRequest
from repro.pods.service import PodService
from repro.scenarios import (
    open_loop_events,
    paced_requests,
    run_scenario,
    scenario_names,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.server import PodClient, PodServer
from repro.shadow import (
    KIND_CANDIDATE_ERROR,
    KIND_LOG_DIVERGENCE,
    AuditLedger,
    ComparisonPolicy,
    DivergenceReport,
    ShadowService,
    decode_record,
    encode_record,
)
from repro.verify.api import GoalReachability, LogValidity, OnlineAuditor
from repro.verify.api.monitor import (
    GoalReachabilityMonitor,
    LogValidityMonitor,
    StepMonitor,
)


def short_vs_buggy(policy=None, ledger=None):
    """The canonical divergence pair: same schema, one dropped guard."""
    db = default_database()
    return ShadowService(
        PodService(build_short(), db),
        PodService(build_buggy_store(), db),
        policy=policy,
        ledger=ledger,
    )


def drive_two_orders(shadow, session_id="s1"):
    """Order twice: SHORT never delivers, buggy delivers at step 2."""
    handle = shadow.create_session(session_id)
    shadow.submit(StepRequest(handle, {"order": {("time",)}}))
    shadow.submit(StepRequest(handle, {"order": {("newsweek",)}}))
    return handle


# -- no false positives: identical candidates ---------------------------------


class TestIdenticalCandidate:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_shadows_itself_cleanly(self, name):
        report = run_scenario(
            name, sessions=3, steps=3, shadow_candidate=name
        )
        assert report.divergences == 0
        assert report.first_divergence_step is None
        assert report.log_digest is not None
        assert report.shadow_log_digest == report.log_digest

    def test_shadow_surface_is_the_pod_surface(self):
        shadow = short_vs_buggy()
        handle = shadow.create_session("s1")
        assert shadow.has_session(handle)
        assert shadow.session_ids() == ["s1"]
        results = shadow.run_session(handle, [{"order": {("time",)}}])
        assert [r.step for r in results] == [1]
        assert shadow.session("s1").steps == 1
        assert shadow.flush() == 0
        log = shadow.close_session(handle)
        assert len(log) == 1
        assert shadow.session_ids() == []


# -- detection ----------------------------------------------------------------


class TestDivergenceDetection:
    def test_buggy_candidate_diverges_with_replayable_trace(self):
        shadow = short_vs_buggy()
        drive_two_orders(shadow)
        assert shadow.divergence_count() == 1
        report = shadow.first_divergence()
        assert report.kind == KIND_LOG_DIVERGENCE
        assert report.step == 2
        assert report.first_divergent_step == 2
        # The candidate delivered without payment; the incumbent did not.
        assert report.candidate["deliver"] == frozenset({("time",)})
        assert report.incumbent["deliver"] == frozenset()
        # The trace is the machine-checkable statement "these two are
        # not log-equivalent on this run".
        assert report.trace.reproduces(build_short())
        assert not report.trace.reproduces(build_buggy_store())

    def test_detection_is_deterministic(self):
        reports = []
        for _ in range(2):
            shadow = short_vs_buggy()
            drive_two_orders(shadow)
            reports.append(shadow.first_divergence())
        assert reports[0] == reports[1]
        # Replay is deterministic too: same verdict both times.
        assert [reports[0].trace.reproduces(build_short()) for _ in range(2)] \
            == [True, True]

    def test_containment_policy_admits_a_quieter_candidate(self):
        # Reversed roles: the buggy store (logs MORE) serves as the
        # incumbent, SHORT as the candidate.  SHORT's log entries are
        # contained in buggy's, so containment stays silent...
        db = default_database()
        contained = ShadowService(
            PodService(build_buggy_store(), db),
            PodService(build_short(), db),
            policy=ComparisonPolicy.containment(),
        )
        drive_two_orders(contained)
        assert contained.divergence_count() == 0
        # ...while strict equivalence flags the same pair.
        strict = ShadowService(
            PodService(build_buggy_store(), db),
            PodService(build_short(), db),
            policy=ComparisonPolicy.strict(),
        )
        drive_two_orders(strict)
        assert strict.divergence_count() == 1

    def test_offline_verdict_agrees_with_online_observation(self):
        shadow = short_vs_buggy()
        drive_two_orders(shadow)
        verdict = shadow.containment_verdict()
        assert verdict is not None and not verdict.contained

    def test_sampled_policy_localizes_the_true_first_divergence(self):
        policy = ComparisonPolicy.sampled(0.4)
        # A session id whose step 2 the hash sample skips but some
        # later step hits -- deterministic, so the scan is stable.
        session_id = next(
            sid
            for sid in (f"sampled-{i}" for i in range(1000))
            if not policy.should_check(sid, 2)
            and any(policy.should_check(sid, k) for k in range(3, 9))
        )
        shadow = short_vs_buggy(policy=policy)
        handle = shadow.create_session(session_id)
        shadow.submit(StepRequest(handle, {"order": {("time",)}}))
        shadow.submit(StepRequest(handle, {"order": {("newsweek",)}}))
        for _ in range(6):
            if shadow.divergence_count():
                break
            shadow.submit(StepRequest(handle, {}))
        report = shadow.first_divergence()
        assert report is not None
        # Detected late (step 2 was unsampled), localized exactly.
        assert report.step > 2
        assert report.first_divergent_step == 2

    def test_fail_closed_raises_shadow_divergence(self):
        shadow = short_vs_buggy(
            policy=ComparisonPolicy.strict(fail_open=False)
        )
        handle = shadow.create_session("s1")
        shadow.submit(StepRequest(handle, {"order": {("time",)}}))
        with pytest.raises(ShadowDivergence) as caught:
            shadow.submit(StepRequest(handle, {"order": {("newsweek",)}}))
        assert caught.value.report.kind == KIND_LOG_DIVERGENCE
        # The incumbent stayed authoritative: its step was applied
        # before the comparison raised.
        assert shadow.incumbent.session("s1").steps == 2

    def test_crashing_candidate_detaches_after_one_report(self):
        class ExplodingCandidate:
            def create_session(self, session_id=None):
                return SessionHandle(session_id or "x")

            def submit(self, request):
                raise RuntimeError("candidate down")

        db = default_database()
        shadow = ShadowService(
            PodService(build_short(), db), ExplodingCandidate()
        )
        handle = shadow.create_session("s1")
        for _ in range(3):
            shadow.submit(StepRequest(handle, {"order": {("time",)}}))
        assert shadow.incumbent.session("s1").steps == 3
        reports = shadow.divergences()
        assert [r.kind for r in reports] == [KIND_CANDIDATE_ERROR]

    def test_policy_validation(self):
        with pytest.raises(SpecError):
            ComparisonPolicy(mode="fuzzy")
        with pytest.raises(SpecError):
            ComparisonPolicy(sample_rate=0.0)
        with pytest.raises(SpecError):
            ComparisonPolicy(sample_rate=1.5)


# -- run_scenario / CLI wiring ------------------------------------------------


class TestScenarioShadow:
    def test_adversarial_candidate_reports_divergences(self):
        report = run_scenario(
            "commerce", sessions=6, steps=4, shadow_candidate="adversarial"
        )
        assert report.shadow_candidate == "adversarial"
        assert report.divergences >= 1
        assert report.first_divergence_step is not None
        assert report.shadow_log_digest != report.log_digest

    def test_cli_shadow_gate_exit_codes(self, capsys):
        args = ["--run", "commerce", "--sessions", "4", "--steps", "3"]
        assert scenarios_main(args + ["--shadow", "adversarial"]) == 1
        assert "divergences" in capsys.readouterr().out
        assert scenarios_main(args + ["--shadow", "commerce"]) == 0
        assert scenarios_main(args) == 0


# -- the persistent ledger ----------------------------------------------------


class TestAuditLedger:
    @given(seed=st.integers(0, 10), kind=st.sampled_from(
        ["memory", "jsonl", "sqlite"]
    ))
    @settings(max_examples=12, deadline=None)
    def test_findings_survive_restart_byte_identically(self, seed, kind):
        db = default_database()
        with tempfile.TemporaryDirectory() as tmp:
            if kind == "memory":
                target = AuditLedger(None)
            elif kind == "jsonl":
                target = os.path.join(tmp, "ledger")
            else:
                target = os.path.join(tmp, "ledger.sqlite")
            auditor = OnlineAuditor(
                [LogValidity(name="log validates against SHORT")],
                reference=build_short(),
                ledger=target,
            )
            service = PodService(build_buggy_store(), db, auditor=auditor)
            # seed-varied violating traffic: order K products, never pay
            products = ["time", "newsweek", "le_monde"]
            handle = service.create_session("s1")
            for step in range(2 + seed % 2):
                product = products[(seed + step) % len(products)]
                service.submit(StepRequest(handle, {"order": {(product,)}}))
            before = [
                json.dumps(encode_record(f), sort_keys=True)
                for f in auditor.findings()
            ]
            assert before, "buggy traffic must produce findings"
            # Restart: a fresh auditor over the same backing store.
            if kind == "memory":
                restarted_target = target  # the live store survives
            else:
                auditor.ledger.close()
                restarted_target = target
            rehydrated = OnlineAuditor(
                [LogValidity(name="log validates against SHORT")],
                reference=build_short(),
                ledger=restarted_target,
            )
            after = [
                json.dumps(encode_record(f), sort_keys=True)
                for f in rehydrated.findings()
            ]
            assert after == before
            # The rehydrated finding still replays.
            finding = rehydrated.findings()[0]
            assert finding.trace.reproduces(build_buggy_store())
            # forget_session prunes the ledger: gone from the live
            # auditor AND from the next rehydration.
            rehydrated.forget_session("s1")
            assert rehydrated.findings() == []
            if kind == "memory":
                pruned_target = restarted_target
            else:
                rehydrated.ledger.close()
                pruned_target = target
            assert OnlineAuditor([], ledger=pruned_target).findings() == []

    def test_record_codec_round_trips_divergence_reports(self):
        ledger = AuditLedger(None)
        shadow = short_vs_buggy(ledger=ledger)
        drive_two_orders(shadow)
        report = shadow.first_divergence()
        blob = json.dumps(encode_record(report), sort_keys=True)
        decoded = decode_record(json.loads(blob))
        assert isinstance(decoded, DivergenceReport)
        assert decoded == report  # trace excluded from equality...
        # ...but carried: the decoded trace replays identically.
        assert decoded.trace.reproduces(build_short())
        assert json.dumps(encode_record(decoded), sort_keys=True) == blob

    def test_shadow_divergences_rehydrate_from_ledger(self):
        with tempfile.TemporaryDirectory() as tmp:
            target = os.path.join(tmp, "shadow.sqlite")
            shadow = short_vs_buggy(ledger=target)
            drive_two_orders(shadow)
            assert shadow.divergence_count() == 1
            shadow.ledger.close()
            reborn = short_vs_buggy(ledger=target)
            assert reborn.divergence_count() == 1
            assert reborn.first_divergence().kind == KIND_LOG_DIVERGENCE

    def test_ledger_rejects_unknown_records(self):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            encode_record({"not": "a record"})
        with pytest.raises(StoreError):
            decode_record({"type": "mystery"})


class TestLedgerRetention:
    """max_findings_per_session= prunes oldest-first on the write path."""

    @staticmethod
    def finding(step):
        from repro.shadow.ledger import LedgerSpec
        from repro.verify.api import AuditFinding

        return AuditFinding(
            session_id="s1",
            step=step,
            spec=LedgerSpec("retention"),
            violation=f"violation #{step}",
        )

    @staticmethod
    def open_ledger(kind, tmp, max_findings):
        if kind == "memory":
            target = None
        elif kind == "jsonl":
            target = os.path.join(tmp, "ledger")
        else:
            target = os.path.join(tmp, "ledger.sqlite")
        return AuditLedger(target, max_findings_per_session=max_findings)

    @pytest.mark.parametrize("kind", ["memory", "jsonl", "sqlite"])
    def test_prunes_oldest_first_and_survives_restart(self, kind):
        with tempfile.TemporaryDirectory() as tmp:
            ledger = self.open_ledger(kind, tmp, max_findings=3)
            for step in range(1, 8):
                ledger.append("s1", self.finding(step))
            kept = [record.step for record in ledger.records("s1")]
            assert kept == [5, 6, 7]
            # Restart: a fresh ledger over the same backing store keeps
            # exactly the retained tail, byte-identically.
            before = [
                json.dumps(encode_record(r), sort_keys=True)
                for r in ledger.records("s1")
            ]
            if kind == "memory":
                reborn = AuditLedger(
                    ledger.store, max_findings_per_session=3
                )
            else:
                ledger.close()
                target = (
                    os.path.join(tmp, "ledger")
                    if kind == "jsonl"
                    else os.path.join(tmp, "ledger.sqlite")
                )
                reborn = AuditLedger(target, max_findings_per_session=3)
            after = [
                json.dumps(encode_record(r), sort_keys=True)
                for r in reborn.records("s1")
            ]
            assert after == before
            # ...and keeps enforcing the bound from the persisted count.
            reborn.append("s1", self.finding(8))
            assert [r.step for r in reborn.records("s1")] == [6, 7, 8]
            reborn.close()

    @pytest.mark.parametrize("kind", ["memory", "jsonl", "sqlite"])
    def test_bound_of_one_keeps_only_the_newest(self, kind):
        with tempfile.TemporaryDirectory() as tmp:
            ledger = self.open_ledger(kind, tmp, max_findings=1)
            for step in (1, 2, 3):
                ledger.append("s1", self.finding(step))
            assert [r.step for r in ledger.records("s1")] == [3]
            ledger.close()

    def test_unbounded_default_retains_everything(self):
        ledger = AuditLedger(None)
        for step in range(1, 6):
            ledger.append("s1", self.finding(step))
        assert [r.step for r in ledger.records("s1")] == [1, 2, 3, 4, 5]

    def test_retention_knob_validation(self):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            AuditLedger(None, max_findings_per_session=0)
        with pytest.raises(StoreError):
            AuditLedger(None, max_findings_per_session="many")


# -- check_every amortization -------------------------------------------------


class TestCheckEvery:
    def drive(self, check_every):
        auditor = OnlineAuditor(
            [LogValidity(name="log validates against SHORT")],
            reference=build_short(),
            check_every=check_every,
        )
        service = PodService(
            build_buggy_store(), default_database(), auditor=auditor
        )
        handle = service.create_session("s1")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        for _ in range(5):
            service.submit(StepRequest(handle, {"order": {("newsweek",)}}))
        return auditor, service.metrics.snapshot()["audit_checks"]

    def test_detection_delayed_to_next_multiple_never_lost(self):
        eager, eager_checks = self.drive(1)
        lazy, lazy_checks = self.drive(3)
        assert [f.step for f in eager.findings()] == [2]
        assert [f.step for f in lazy.findings()] == [3]
        assert lazy_checks < eager_checks

    def test_amortizable_is_opt_in_per_monitor_class(self):
        assert StepMonitor.amortizable is False
        assert LogValidityMonitor.amortizable is True
        assert GoalReachabilityMonitor.amortizable is True

    def test_check_every_validation(self):
        with pytest.raises(SpecError):
            OnlineAuditor([], check_every=0)
        with pytest.raises(SpecError):
            OnlineAuditor([], check_every=2.5)

    def test_goal_reachability_amortizes_too(self):
        from repro.verify.reachability import Goal

        def drive(check_every):
            # vogue has no price row, so delivering it is unreachable
            # from the very first step -- and stays so (latching).
            auditor = OnlineAuditor(
                [GoalReachability(Goal.atoms(deliver=("vogue",)))],
                reference=build_short(),
                check_every=check_every,
            )
            service = PodService(
                build_short(), default_database(), auditor=auditor
            )
            handle = service.create_session("s1")
            service.submit(StepRequest(handle, {"order": {("time",)}}))
            service.submit(StepRequest(handle, {"pay": {("time", 55)}}))
            return [finding.step for finding in auditor.findings()]

        assert drive(1) == [1]
        assert drive(2) == [2]


# -- paced (real-clock) open-loop replay --------------------------------------


class TestPacing:
    def fake_clock(self):
        state = {"now": 100.0}
        sleeps = []

        def clock():
            return state["now"]

        def sleep(seconds):
            sleeps.append(round(seconds, 9))
            state["now"] += seconds

        return clock, sleep, sleeps

    def test_paced_requests_sleep_to_the_schedule(self):
        events = [
            (0.5, StepRequest("a", {})),
            (1.25, StepRequest("b", {})),
            (1.25, StepRequest("a", {})),
            (2.0, StepRequest("b", {})),
        ]
        clock, sleep, sleeps = self.fake_clock()
        order = [
            r.session
            for r in paced_requests(events, clock=clock, sleep=sleep)
        ]
        assert order == ["a", "b", "a", "b"]
        # Slept to 0.5, then to 1.25; the simultaneous event was
        # already due; then to 2.0.
        assert sleeps == [0.5, 0.75, 0.75]

    def test_time_scale_stretches_the_schedule(self):
        events = [(1.0, StepRequest("a", {}))]
        clock, sleep, sleeps = self.fake_clock()
        list(paced_requests(events, time_scale=3.0, clock=clock, sleep=sleep))
        assert sleeps == [3.0]

    def test_lateness_accumulates_instead_of_reordering(self):
        # A clock that jumps past every deadline: nothing sleeps, order
        # is untouched -- the open loop absorbs lateness.
        events = [(0.1, StepRequest("a", {})), (0.2, StepRequest("b", {}))]
        state = {"now": 0.0}

        def clock():
            state["now"] += 10.0
            return state["now"]

        recorded = []
        order = [
            r.session
            for r in paced_requests(
                events, clock=clock, sleep=recorded.append
            )
        ]
        assert order == ["a", "b"]
        assert recorded == []

    def test_paced_run_matches_unpaced_digest(self):
        # time_scale=0 replays the schedule instantly -- same order,
        # same logs, same digest as the batched default.
        unpaced = run_scenario("commerce", sessions=4, steps=3)
        paced = run_scenario(
            "commerce", sessions=4, steps=3, pace=True, time_scale=0.0
        )
        assert paced.log_digest == unpaced.log_digest
        assert paced.total_steps == unpaced.total_steps

    def test_events_and_schedule_agree(self):
        from repro.scenarios import open_loop_schedule
        from repro.scenarios.registry import resolve_scenario

        workload = resolve_scenario("commerce").workload(
            sessions=3, mean_steps=3, seed=5
        )
        events = open_loop_events(workload, seed=5)
        assert [r for _at, r in events] == open_loop_schedule(
            workload, seed=5
        )
        assert all(
            earlier <= later
            for (earlier, _), (later, _) in zip(events, events[1:])
        )


# -- GET /v1/audits over a server restart -------------------------------------


def ledgered_audit_factory(shard_index):
    """Module-level (picklable) factory: one sqlite ledger per shard.

    Workers are spawned processes; the ledger root travels through the
    environment, which spawn children inherit.
    """
    root = os.environ["REPRO_TEST_LEDGER_ROOT"]
    return OnlineAuditor(
        [LogValidity(name="log validates against SHORT")],
        reference=build_short(),
        ledger=os.path.join(root, f"ledger-{shard_index:02d}.sqlite"),
    )


class TestHttpAudits:
    def test_findings_queryable_over_http_and_survive_restart(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_LEDGER_ROOT", str(tmp_path))
        store_root = str(tmp_path / "store")
        server_kwargs = dict(
            workers=2,
            queue_depth=16,
            store_root=store_root,
            auditor_factory=ledgered_audit_factory,
        )
        with PodServer(
            build_buggy_store, default_database(), **server_kwargs
        ) as server:
            client = PodClient(server.url, build_buggy_store())
            assert client.audit_findings() == []
            for index in range(3):
                handle = client.create_session(f"audit-{index}")
                client.submit(StepRequest(handle, {"order": {("time",)}}))
                client.submit(
                    StepRequest(handle, {"order": {("newsweek",)}})
                )
            before = client.audit_findings()
            assert [f.session_id for f in before] == [
                "audit-0", "audit-1", "audit-2"
            ]
            assert all(f.step == 2 for f in before)
            assert all(
                f.property_name == "log validates against SHORT"
                for f in before
            )
            assert client.audit_findings("audit-1") == [before[1]]
        # Full restart over the same stores and ledgers: the findings
        # are rehydrated into each worker's auditor and served again.
        with PodServer(
            build_buggy_store, default_database(), **server_kwargs
        ) as reborn:
            after = PodClient(reborn.url, build_buggy_store()).audit_findings()
            assert after == before
