"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sat import SatSolver, verify_assignment
from repro.relalg import (
    DatabaseSchema,
    Instance,
    difference,
    intersection,
    natural_join,
    project,
    union,
)

values = st.sampled_from(["a", "b", "c", "d"])
rows2 = st.frozensets(st.tuples(values, values), max_size=8)
rows1 = st.frozensets(st.tuples(values), max_size=6)


class TestAlgebraProperties:
    @given(rows2, rows2)
    def test_union_commutative(self, left, right):
        assert union(left, right) == union(right, left)

    @given(rows2, rows2, rows2)
    def test_union_associative(self, a, b, c):
        assert union(union(a, b), c) == union(a, union(b, c))

    @given(rows2, rows2)
    def test_difference_subset(self, left, right):
        assert difference(left, right) <= frozenset(left)

    @given(rows2, rows2)
    def test_demorgan_on_sets(self, left, right):
        universe = union(left, right)
        assert difference(universe, intersection(left, right)) == union(
            difference(universe, left) & universe,
            difference(universe, right) & universe,
        )

    @given(rows2)
    def test_projection_idempotent(self, rows):
        once = project(rows, [0])
        assert project(once, [0]) == once

    @given(rows2, rows2)
    def test_join_symmetric_up_to_column_swap(self, left, right):
        lr = natural_join(left, right, [(0, 0)])
        rl = natural_join(right, left, [(0, 0)])
        swapped = {row[2:] + row[:2] for row in lr}
        assert swapped == rl

    @given(rows2)
    def test_join_with_self_contains_diagonal(self, rows):
        joined = natural_join(rows, rows, [(0, 0), (1, 1)])
        assert {row + row for row in rows} <= joined


class TestInstanceProperties:
    @given(rows1, rows1)
    def test_union_difference_roundtrip(self, a, b):
        schema = DatabaseSchema.of(r=1)
        ia = Instance(schema, {"r": a})
        ib = Instance(schema, {"r": b})
        assert ia.union(ib).difference(ib).union(
            ia
        )["r"] == ia["r"] | (a - b)

    @given(rows1)
    def test_restrict_preserves_content(self, a):
        schema = DatabaseSchema.of(r=1, s=1)
        inst = Instance(schema, {"r": a})
        assert inst.restrict(["r"])["r"] == frozenset(a)


clause_lists = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    ),
    max_size=12,
)


class TestSatProperties:
    @given(clause_lists)
    @settings(max_examples=60, deadline=None)
    def test_sat_models_verify(self, clauses):
        solution = SatSolver(clauses, 5).solve()
        if solution.satisfiable:
            assert verify_assignment(clauses, solution.assignment)

    @given(clause_lists)
    @settings(max_examples=60, deadline=None)
    def test_solver_agrees_with_bruteforce(self, clauses):
        solution = SatSolver(clauses, 5).solve()
        brute = any(
            verify_assignment(
                clauses,
                {v: bool(mask >> (v - 1) & 1) for v in range(1, 6)},
            )
            for mask in range(32)
        )
        assert solution.satisfiable == brute


PROGRAMS = [
    # join + projection
    "p(X, Z) :- e(X, Y), e(Y, Z);",
    # negation with late-binding variable
    "p(X, Y) :- e(X, Y), NOT f(Y);",
    "p(X, Y) :- f(X), NOT e(X, Y), e(Y, X);",
    # inequalities, incl. constants
    "p(X, Y) :- e(X, Y), X <> Y;",
    "p(X) :- f(X), X <> a;",
    # recursion (transitive closure) + stratified negation on top
    "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);",
    """
    t(X, Y) :- e(X, Y);
    t(X, Z) :- t(X, Y), e(Y, Z);
    p(X, Y) :- f(X), f(Y), NOT t(X, Y), X <> Y;
    """,
    # repeated variables
    "p(X) :- e(X, X);",
]


class TestEvaluatorEquivalence:
    """The indexed evaluator agrees with the scan-based reference on
    random databases, for every program shape (index-vs-scan check)."""

    @given(
        st.sampled_from(PROGRAMS),
        st.frozensets(st.tuples(values, values), max_size=12),
        st.frozensets(st.tuples(values), max_size=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_indexed_equals_naive(self, source, edges, unary):
        from repro.datalog import (
            evaluate_program,
            evaluate_program_naive,
            parse_program,
        )

        program = parse_program(source)
        facts = {"e": edges, "f": unary}
        assert evaluate_program(program, facts) == evaluate_program_naive(
            program, facts
        )

    @given(
        st.frozensets(st.tuples(values, values), max_size=10),
        st.frozensets(st.tuples(values), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_rule_level_equivalence_with_delta(self, edges, unary):
        """Semi-naive restriction: a full re-evaluation must never derive
        less than the reference once deltas are merged in."""
        from repro.datalog import (
            evaluate_rule,
            evaluate_rule_naive,
            parse_rule,
        )

        rule = parse_rule("t(X, Z) :- t(X, Y), e(Y, Z)")
        split = len(edges) // 2
        old = frozenset(list(edges)[:split])
        delta = edges - old
        facts = {"e": edges, "t": edges, "f": unary}
        indexed = evaluate_rule(rule, facts, delta={"t": delta})
        naive = evaluate_rule_naive(rule, facts, delta={"t": delta})
        assert indexed == naive


class TestTransducerProperties:
    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "order": st.frozensets(
                        st.tuples(st.sampled_from(["time", "newsweek"])),
                        max_size=2,
                    ),
                    "pay": st.frozensets(
                        st.tuples(
                            st.sampled_from(["time", "newsweek"]),
                            st.sampled_from([55, 45]),
                        ),
                        max_size=2,
                    ),
                }
            ),
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_state_is_monotone(self, inputs):
        from repro.commerce.models import build_short, default_database

        short = build_short()
        run = short.run(default_database(), inputs)
        for i in range(1, len(run.states)):
            for name in run.states[i].schema.names:
                assert run.states[i - 1][name] <= run.states[i][name]

    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "order": st.frozensets(
                        st.tuples(st.sampled_from(["time", "newsweek"])),
                        max_size=1,
                    ),
                    "pay": st.frozensets(
                        st.tuples(
                            st.sampled_from(["time", "newsweek"]),
                            st.sampled_from([55, 45]),
                        ),
                        max_size=1,
                    ),
                }
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_every_real_log_is_valid(self, inputs):
        """Soundness of Theorem 3.1 end to end: logs of real runs always
        validate, and the decoded witness regenerates the log."""
        from repro.commerce.models import build_short, default_database
        from repro.verify import is_valid_log

        short = build_short()
        db = default_database()
        run = short.run(db, inputs)
        result = is_valid_log(short, db, run.logs)
        assert result.valid

    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "order": st.frozensets(
                        st.tuples(st.sampled_from(["time", "newsweek"])),
                        max_size=2,
                    ),
                    "pay": st.frozensets(
                        st.tuples(
                            st.sampled_from(["time", "newsweek"]),
                            st.sampled_from([55, 45]),
                        ),
                        max_size=2,
                    ),
                }
            ),
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_temporal_claim_holds_operationally(self, inputs):
        """The verified property really does hold on arbitrary runs."""
        from repro.commerce.models import build_short, default_database
        from repro.verify.temporal import check_run_satisfies
        from tests.test_verify_temporal_containment import (
            NO_DELIVERY_BEFORE_PAY,
        )

        short = build_short()
        db = default_database()
        run = short.run(db, inputs)
        assert check_run_satisfies(short, run, NO_DELIVERY_BEFORE_PAY, db)
