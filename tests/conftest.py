"""Shared fixtures: the paper's example transducers and catalog."""

import pytest

from repro.commerce.models import (
    FIGURE1_INPUTS,
    FIGURE2_INPUTS,
    build_buggy_store,
    build_friendly,
    build_short,
    default_database,
)


@pytest.fixture
def short():
    return build_short()


@pytest.fixture
def friendly():
    return build_friendly()


@pytest.fixture
def buggy():
    return build_buggy_store()


@pytest.fixture
def catalog_db():
    return default_database()


@pytest.fixture
def figure1_inputs():
    return FIGURE1_INPUTS


@pytest.fixture
def figure2_inputs():
    return FIGURE2_INPUTS
