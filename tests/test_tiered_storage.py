"""Tiered session storage: SQLite store, LRU cache, lifecycle API.

The tentpole guarantee mirrors the concurrency layer's: *observational
transparency*.  Whatever the backend ({in-memory, JSONL directory,
single-file SQLite}) and whatever the residency bound (unlimited, or as
tight as ``max_resident_sessions=1`` forcing an eviction on almost
every step), a service produces byte-identical logs, states, and
persisted snapshots -- serially, under concurrent ``submit_batch``,
across a restart, and with an :class:`OnlineAuditor` attached (audits
keep firing after rehydration).  On top sit the lifecycle surface
(``flush``/``close``/``stats``), the typed ``MigrationReport``, and the
crash-safety of JSONL compaction.
"""

import json
import os
import sqlite3
import tempfile
import threading
from itertools import product
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.catalog import Catalog, CatalogGenerator
from repro.commerce.models import (
    build_buggy_store,
    build_friendly,
    build_short,
    default_database,
)
from repro.commerce.workloads import SessionGenerator
from repro.errors import SessionError, StoreError
from repro.pods import (
    MAX_RESIDENT_ENV,
    InMemoryStore,
    JsonlDirectoryStore,
    LruSessionCache,
    PodService,
    ShardedPodService,
    SqliteStore,
    StepRequest,
    StoreStats,
    max_resident_sessions,
    migrate_sessions,
    open_store,
)
from repro.pods.session import Session
from repro.pods.store import _encode_facts
from repro.verify.api import LogValidity, OnlineAuditor

CATALOG = CatalogGenerator(seed=23).generate(12)
FIGURE1_CATALOG = Catalog(
    ("time", "newsweek", "le_monde"),
    {"time": 55, "newsweek": 45, "le_monde": 350},
    frozenset(("time", "newsweek", "le_monde")),
)


def scripts_for(counts, seed):
    return {
        f"customer-{index:02d}": SessionGenerator(
            CATALOG, seed=seed * 1_000_003 + index
        ).session(count)
        for index, count in enumerate(counts)
    }


def batch_of(scripts, order):
    ids = sorted(scripts)
    cursors = {session_id: 0 for session_id in ids}
    batch = []
    for index in order:
        session_id = ids[index]
        batch.append(
            StepRequest(session_id, scripts[session_id][cursors[session_id]])
        )
        cursors[session_id] += 1
    return batch


def run_batch(service, scripts, batch, concurrency):
    for session_id in scripts:
        service.create_session(session_id)
    return service.submit_batch(batch, concurrency=concurrency)


def canonical(snapshot):
    """A snapshot in its canonical bytes (the JSONL/SQLite wire form)."""
    return (
        snapshot.session_id,
        snapshot.steps,
        json.dumps(_encode_facts(snapshot.state_facts), sort_keys=True),
        tuple(
            json.dumps(_encode_facts(entry), sort_keys=True)
            for entry in snapshot.log_facts
        ),
    )


def fresh_session(session_id="s"):
    transducer = build_short()
    return Session(
        session_id, transducer, transducer.coerce_database(default_database())
    )


@st.composite
def workloads(draw):
    counts = draw(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    multiset = [i for i, count in enumerate(counts) for _ in range(count)]
    order = draw(st.permutations(multiset))
    seed = draw(st.integers(0, 999))
    return counts, list(order), seed


class TestSqliteStore:
    def test_service_roundtrip_and_restart(self, tmp_path):
        path = tmp_path / "pods.sqlite"
        scripts = scripts_for([3, 2], seed=7)
        order = [0, 1, 0, 1, 0]
        batch = batch_of(scripts, order)
        reference = PodService(build_friendly(), CATALOG.as_database())
        run_batch(reference, scripts, batch, concurrency=1)
        service = PodService(
            build_friendly(), CATALOG.as_database(), store=SqliteStore(path)
        )
        run_batch(service, scripts, batch, concurrency=1)
        revived = PodService(
            build_friendly(), CATALOG.as_database(), store=SqliteStore(path)
        )
        for session_id in scripts:
            assert canonical(revived.store.load(session_id)) == canonical(
                reference.store.load(session_id)
            )
            assert list(revived.session(session_id).log().entries) == list(
                reference.session(session_id).log().entries
            )

    def test_path_string_routes_to_sqlite(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_store(str(tmp_path / f"pods{suffix}"))
            assert isinstance(store, SqliteStore)
        assert isinstance(open_store(str(tmp_path / "plain")),
                          JsonlDirectoryStore)
        service = PodService(
            build_short(),
            default_database(),
            store=str(tmp_path / "svc.sqlite"),
        )
        assert isinstance(service.store, SqliteStore)

    def test_wal_mode_is_on(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"

    def test_knob_validation(self, tmp_path):
        with pytest.raises(StoreError, match="durability"):
            SqliteStore(tmp_path / "a.sqlite", durability="paranoid")
        with pytest.raises(StoreError, match="flush_every"):
            SqliteStore(tmp_path / "b.sqlite", flush_every=0)
        # StoreError is a SessionError: existing handlers keep working.
        assert issubclass(StoreError, SessionError)

    def test_batched_flush_counts_events(self, tmp_path):
        store = SqliteStore(
            tmp_path / "pods.sqlite", durability="batched", flush_every=10_000
        )
        service = PodService(
            build_short(), default_database(), store=store
        )
        handle = service.create_session("alice")
        for inputs in ({"order": {("time",)}}, {"pay": {("time", 55)}}):
            service.submit(StepRequest(handle, inputs))
        # created + 2 steps are buffered; flush commits and counts them.
        assert store.flush() == 3
        assert store.flush() == 0

    def test_batched_threshold_autocommits(self, tmp_path):
        path = tmp_path / "pods.sqlite"
        store = SqliteStore(path, durability="batched", flush_every=2)
        store.record_created("alice")
        session = fresh_session("alice")
        session.step({"order": {("time",)}})
        store.record_step(
            "alice", session.steps, session.state, session.last_log_entry
        )
        # Two events crossed the threshold: a second, independent
        # connection sees the committed rows without any explicit flush.
        reader = SqliteStore(path)
        assert reader.session_ids() == ["alice"]
        assert reader.load("alice").steps == 1

    def test_read_your_writes_under_batched(self, tmp_path):
        store = SqliteStore(
            tmp_path / "pods.sqlite", durability="batched", flush_every=10_000
        )
        store.record_created("alice")
        assert store.session_ids() == ["alice"]
        session = fresh_session("alice")
        session.step({"order": {("time",)}})
        store.record_step(
            "alice", session.steps, session.state, session.last_log_entry
        )
        assert store.load("alice").steps == 1

    def test_durability_full_sets_synchronous(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite", durability="full")
        (level,) = store._conn.execute("PRAGMA synchronous").fetchone()
        assert level == 2  # FULL

    def test_close_then_use_raises(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        store.record_created("alice")
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            store.load("alice")
        with pytest.raises(StoreError, match="closed"):
            store.record_created("bob")

    def test_context_manager_flushes_and_closes(self, tmp_path):
        path = tmp_path / "pods.sqlite"
        with SqliteStore(
            path, durability="batched", flush_every=10_000
        ) as store:
            store.record_created("alice")
        assert SqliteStore(path).session_ids() == ["alice"]
        with pytest.raises(StoreError, match="closed"):
            store.session_ids()

    def test_record_closed_drops_the_session(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        service = PodService(build_short(), default_database(), store=store)
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.close_session(handle)
        assert store.load("alice") is None
        assert store.session_ids() == []

    def test_recreating_an_id_truncates_history(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        session = fresh_session("alice")
        store.record_created("alice")
        session.step({"order": {("time",)}})
        store.record_step(
            "alice", session.steps, session.state, session.last_log_entry
        )
        store.record_created("alice")
        snapshot = store.load("alice")
        assert snapshot.steps == 0 and snapshot.log_facts == ()

    def test_import_collision_raises(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        store.record_created("alice")
        snapshot = store.load("alice")
        with pytest.raises(SessionError, match="already exists"):
            store.import_snapshot(snapshot)

    def test_stats(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        assert store.stats() == StoreStats(0, 0, store.stats().bytes_on_disk, 0)
        service = PodService(build_short(), default_database(), store=store)
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.create_session("bob")
        stats = store.stats()
        assert stats.sessions == 2
        assert stats.open_sessions == 2
        assert stats.events == 3  # two snapshot rows + one log row
        assert stats.bytes_on_disk > 0

    def test_migrate_jsonl_to_sqlite_and_back(self, tmp_path):
        jsonl = JsonlDirectoryStore(tmp_path / "pods")
        service = PodService(build_short(), default_database(), store=jsonl)
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        sqlite_store = SqliteStore(tmp_path / "pods.sqlite")
        report = migrate_sessions(jsonl, sqlite_store)
        assert report.migrated == ("alice",)
        assert canonical(sqlite_store.load("alice")) == canonical(
            jsonl.load("alice")
        )
        moved = PodService(
            build_short(), default_database(), store=sqlite_store
        )
        moved.submit(StepRequest("alice", {"pay": {("time", 55)}}))
        assert moved.session("alice").steps == 2
        back = InMemoryStore()
        assert migrate_sessions(sqlite_store, back).migrated == ("alice",)

    def test_sqlite_errors_wrapped_as_store_errors(self, tmp_path):
        store = SqliteStore(tmp_path / "pods.sqlite")
        store._conn.close()  # simulate a dead backend
        with pytest.raises((StoreError, sqlite3.Error)):
            store.record_created("alice")


class TestLruSessionCache:
    def put(self, cache, session_id, **kwargs):
        return cache.put(session_id, fresh_session(session_id), **kwargs)

    def test_evicts_least_recently_used(self):
        cache = LruSessionCache(max_resident=2)
        assert self.put(cache, "a") == []
        assert self.put(cache, "b") == []
        assert cache.get("a") is not None  # freshen a: b is now LRU
        evicted = self.put(cache, "c")
        assert [session_id for session_id, _ in evicted] == ["b"]
        assert cache.ids() == ["a", "c"]

    def test_pinned_entries_survive_pressure(self):
        cache = LruSessionCache(max_resident=1)
        self.put(cache, "a")
        assert cache.pin("a") is not None
        # a is pinned, so the unpinned newcomer is itself shed to keep
        # the bound -- harmless for the service (its state is already
        # in the store; the next request rehydrates it).
        evicted = self.put(cache, "b")
        assert [session_id for session_id, _ in evicted] == ["b"]
        assert cache.ids() == ["a"]
        assert cache.unpin("a") == []  # back within bounds: nothing shed

    def test_all_pinned_overflows_then_sheds_on_unpin(self):
        cache = LruSessionCache(max_resident=1)
        self.put(cache, "a", pin=True)
        assert self.put(cache, "b", pin=True) == []  # both mid-step
        assert len(cache) == 2  # temporary overflow, never an eviction
        evicted = cache.unpin("a")
        assert [session_id for session_id, _ in evicted] == ["a"]
        assert cache.ids() == ["b"]

    def test_put_pin_is_atomic_and_duplicates_raise(self):
        cache = LruSessionCache(max_resident=1)
        self.put(cache, "a", pin=True)
        with pytest.raises(SessionError, match="already resident"):
            self.put(cache, "a")
        assert cache.pop("a") is not None  # pop removes even pinned
        assert cache.pop("a") is None

    def test_unlimited_cache_never_evicts(self):
        cache = LruSessionCache(max_resident=None)
        for index in range(50):
            assert self.put(cache, f"s{index}") == []
        assert len(cache) == 50

    def test_unpin_of_popped_entry_is_harmless(self):
        cache = LruSessionCache(max_resident=1)
        self.put(cache, "a", pin=True)
        cache.pop("a")
        assert cache.unpin("a") == []

    def test_limit_validation(self):
        with pytest.raises(SessionError, match=">= 1"):
            LruSessionCache(max_resident=0)


class TestResidencyKnob:
    def test_default_is_unlimited(self, monkeypatch):
        monkeypatch.delenv(MAX_RESIDENT_ENV, raising=False)
        assert max_resident_sessions() is None
        assert max_resident_sessions(0) is None

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_RESIDENT_ENV, "8")
        assert max_resident_sessions() == 8
        assert max_resident_sessions(3) == 3  # explicit argument wins
        assert max_resident_sessions(0) is None  # explicit unlimited wins
        monkeypatch.setenv(MAX_RESIDENT_ENV, "0")
        assert max_resident_sessions() is None

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(SessionError, match=">= 0"):
            max_resident_sessions(-1)
        monkeypatch.setenv(MAX_RESIDENT_ENV, "many")
        with pytest.raises(SessionError, match="need an integer"):
            max_resident_sessions()

    def test_service_exposes_the_bound(self, monkeypatch):
        monkeypatch.delenv(MAX_RESIDENT_ENV, raising=False)
        service = PodService(
            build_short(), default_database(), max_resident_sessions=2
        )
        assert service.max_resident_sessions == 2
        monkeypatch.setenv(MAX_RESIDENT_ENV, "5")
        from_env = PodService(build_short(), default_database())
        assert from_env.max_resident_sessions == 5

    def test_sharded_bound_is_per_shard(self, monkeypatch):
        monkeypatch.delenv(MAX_RESIDENT_ENV, raising=False)
        service = ShardedPodService(
            build_short(), default_database(), shards=2,
            max_resident_sessions=1,
        )
        for index in range(6):
            service.create_session(f"s{index}")
        assert len(service.resident_session_ids()) <= 2  # one per shard
        assert sorted(service.session_ids()) == [
            f"s{index}" for index in range(6)
        ]


class TestEvictionRehydration:
    def drive(self, service, rounds=3):
        handles = [service.create_session(f"s{index}") for index in range(5)]
        for _ in range(rounds):
            for handle in handles:
                service.submit(StepRequest(handle, {"order": {("time",)}}))
        return handles

    def test_bounded_residency_identical_behavior(self):
        unlimited = PodService(build_short(), default_database())
        bounded = PodService(
            build_short(), default_database(), max_resident_sessions=2
        )
        self.drive(unlimited)
        self.drive(bounded)
        assert len(bounded.resident_session_ids()) <= 2
        assert bounded.session_ids() == unlimited.session_ids()
        assert bounded.metrics.sessions_evicted > 0
        assert bounded.metrics.sessions_rehydrated > 0
        assert unlimited.metrics.sessions_evicted == 0
        for session_id in bounded.session_ids():
            assert canonical(bounded.store.load(session_id)) == canonical(
                unlimited.store.load(session_id)
            )
        assert [list(log.entries) for log in bounded.logs()] == [
            list(log.entries) for log in unlimited.logs()
        ]

    def test_jsonl_files_identical_under_eviction(self, tmp_path):
        stores = {}
        for name, resident in (("free", 0), ("tight", 1)):
            store = JsonlDirectoryStore(tmp_path / name)
            stores[name] = store
            self.drive(
                PodService(
                    build_short(),
                    default_database(),
                    store=store,
                    max_resident_sessions=resident,
                )
            )
        for path in sorted(stores["free"].directory.glob("*.jsonl")):
            twin = stores["tight"].directory / path.name
            assert twin.read_bytes() == path.read_bytes()

    def test_rehydration_not_counted_as_resume(self):
        service = PodService(
            build_short(), default_database(), max_resident_sessions=1
        )
        self.drive(service, rounds=2)
        assert service.metrics.sessions_resumed == 0
        assert service.metrics.sessions_rehydrated > 0
        # A genuinely new service over the same store resumes instead.
        revived = PodService(
            build_short(), default_database(), store=service.store
        )
        revived.session("s0")
        assert revived.metrics.sessions_resumed == 1
        assert revived.metrics.sessions_rehydrated == 0

    def test_close_evicted_session(self):
        service = PodService(
            build_short(), default_database(), max_resident_sessions=1
        )
        handles = self.drive(service, rounds=1)
        # s0 was evicted long ago; closing it still returns its log.
        assert "s0" not in service.resident_session_ids()
        log = service.close_session(handles[0])
        assert len(log.entries) == 1
        assert not service.has_session("s0")
        assert "s0" not in service.session_ids()
        with pytest.raises(SessionError, match="no such session"):
            service.close_session(handles[0])

    def test_concurrent_batches_under_heavy_eviction(self):
        scripts = scripts_for([4, 4, 4, 4, 4, 4], seed=3)
        order = [i for _ in range(4) for i in range(6)]
        batch = batch_of(scripts, order)
        reference = PodService(build_friendly(), CATALOG.as_database())
        reference_results = run_batch(reference, scripts, batch, 1)
        service = PodService(
            build_friendly(), CATALOG.as_database(), max_resident_sessions=1
        )
        results = run_batch(service, scripts, batch, concurrency=4)
        assert [r.output for r in results] == [
            r.output for r in reference_results
        ]
        assert service.metrics.sessions_evicted > 0
        for session_id in scripts:
            assert service.session(session_id).state == reference.session(
                session_id
            ).state

    def test_eviction_counters_in_snapshot(self):
        service = PodService(
            build_short(), default_database(), max_resident_sessions=1
        )
        self.drive(service, rounds=1)
        snapshot = service.metrics.snapshot()
        assert snapshot["sessions_evicted"] == (
            service.metrics.sessions_evicted
        )
        assert snapshot["sessions_rehydrated"] == (
            service.metrics.sessions_rehydrated
        )
        assert "store_flushes" in snapshot

    def test_service_flush_and_counter(self, tmp_path):
        store = SqliteStore(
            tmp_path / "pods.sqlite", durability="batched", flush_every=10_000
        )
        service = PodService(build_short(), default_database(), store=store)
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        assert service.flush() == 2  # created + one step
        assert service.metrics.store_flushes == 1
        assert service.flush() == 0
        # In-memory stores are write-through: flush is a no-op count.
        plain = PodService(build_short(), default_database())
        assert plain.flush() == 0


class TestAuditSurvivesRehydration:
    def audited(self, max_resident):
        return PodService(
            build_buggy_store(),
            default_database(),
            auditor=OnlineAuditor([LogValidity()], reference=build_short()),
            max_resident_sessions=max_resident,
        )

    # alice's empty step 2 makes the buggy store deliver unpaid -- an
    # invalid log step the auditor must catch even though alice was
    # evicted (bob's step pushed her out) and rehydrated in between.
    BATCH = [
        StepRequest("alice", {"order": {("time",)}}),
        StepRequest("bob", {"order": {("newsweek",)}}),
        StepRequest("alice", {}),
        StepRequest("bob", {"pay": {("newsweek", 45)}}),
    ]

    def digest(self, findings):
        return sorted((f.session_id, f.step, f.violation) for f in findings)

    @pytest.mark.parametrize("concurrency", [1, 2])
    def test_violation_found_after_rehydration(self, concurrency):
        reference = self.audited(max_resident=0)
        for session_id in ("alice", "bob"):
            reference.create_session(session_id)
        reference.submit_batch(self.BATCH, concurrency=1)

        service = self.audited(max_resident=1)
        for session_id in ("alice", "bob"):
            service.create_session(session_id)
        service.submit_batch(self.BATCH, concurrency=concurrency)
        if concurrency == 1:
            assert service.metrics.sessions_evicted > 0
            assert service.metrics.sessions_rehydrated > 0
        assert service.auditor.is_registered("alice")
        findings = self.digest(service.audit_findings())
        assert findings == self.digest(reference.audit_findings())
        assert any(
            session_id == "alice" and step == 2
            for session_id, step, _ in findings
        )
        assert (
            service.metrics.audit_checks == reference.metrics.audit_checks
        )

    def test_registration_survives_eviction(self):
        service = self.audited(max_resident=1)
        service.create_session("alice")
        service.create_session("bob")  # evicts alice
        assert "alice" not in service.resident_session_ids()
        assert service.auditor.is_registered("alice")
        # Re-registering on rehydration is a no-op, not a reset.
        assert service.auditor.register_session("alice") is False


class TestThreeWayEquivalence:
    """{InMemory, Jsonl, Sqlite} x {unbounded, max_resident=1} x
    {serial, concurrent} all produce the baseline's bytes."""

    def store_of(self, kind, root):
        if kind == "memory":
            return InMemoryStore()
        if kind == "jsonl":
            return JsonlDirectoryStore(root / "pods")
        return SqliteStore(root / "pods.sqlite")

    @settings(max_examples=6, deadline=None)
    @given(workloads())
    def test_all_backends_and_residencies_agree(self, workload):
        counts, order, seed = workload
        scripts = scripts_for(counts, seed)
        batch = batch_of(scripts, order)
        baseline = PodService(build_friendly(), CATALOG.as_database())
        baseline_results = run_batch(baseline, scripts, batch, 1)
        expected = {
            session_id: canonical(baseline.store.load(session_id))
            for session_id in scripts
        }
        cases = product(
            ("memory", "jsonl", "sqlite"), (0, 1), (1, 3)
        )
        with tempfile.TemporaryDirectory() as scratch:
            for index, (kind, resident, concurrency) in enumerate(cases):
                root = Path(scratch) / f"case-{index}"
                store = self.store_of(kind, root)
                service = PodService(
                    build_friendly(),
                    CATALOG.as_database(),
                    store=store,
                    max_resident_sessions=resident,
                )
                results = run_batch(service, scripts, batch, concurrency)
                assert [(r.session, r.step, r.output) for r in results] == [
                    (r.session, r.step, r.output) for r in baseline_results
                ]
                for session_id in scripts:
                    assert canonical(store.load(session_id)) == expected[
                        session_id
                    ]
                    assert list(
                        service.session(session_id).log().entries
                    ) == list(baseline.session(session_id).log().entries)
                if kind == "memory":
                    continue
                # Restart: a fresh service (and store instance) over the
                # same bytes resumes to the same sessions.
                revived = PodService(
                    build_friendly(),
                    CATALOG.as_database(),
                    store=self.store_of(kind, root),
                    max_resident_sessions=resident,
                )
                for session_id in scripts:
                    assert revived.session(
                        session_id
                    ).state == baseline.session(session_id).state

    @settings(max_examples=4, deadline=None)
    @given(workloads())
    def test_forced_eviction_mid_run_then_restart(self, workload):
        """Half the batch unbounded, then the bound drops to 1 by
        'restarting' over the same store -- the tail still matches."""
        counts, order, seed = workload
        scripts = scripts_for(counts, seed)
        batch = batch_of(scripts, order)
        half = len(batch) // 2
        baseline = PodService(build_friendly(), CATALOG.as_database())
        run_batch(baseline, scripts, batch, 1)
        with tempfile.TemporaryDirectory() as scratch:
            store = SqliteStore(Path(scratch) / "pods.sqlite")
            first = PodService(
                build_friendly(), CATALOG.as_database(), store=store
            )
            run_batch(first, scripts, batch[:half], 1)
            second = PodService(
                build_friendly(),
                CATALOG.as_database(),
                store=store,
                max_resident_sessions=1,
            )
            second.submit_batch(batch[half:], concurrency=1)
            for session_id in scripts:
                assert canonical(store.load(session_id)) == canonical(
                    baseline.store.load(session_id)
                )


class TestCrashSafeCompaction:
    def multi_record_store(self, tmp_path):
        store = JsonlDirectoryStore(
            tmp_path / "pods", compact_on_open=False
        )
        service = PodService(build_short(), default_database(), store=store)
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.submit(StepRequest(handle, {"pay": {("time", 55)}}))
        return store

    def test_killed_mid_compaction_loses_nothing(self, tmp_path, monkeypatch):
        store = self.multi_record_store(tmp_path)
        before = canonical(store.load("alice"))

        def power_cut(src, dst):
            raise RuntimeError("killed mid-compaction")

        with monkeypatch.context() as patch:
            # Die after the scratch file is written, before the atomic
            # replace: the moment a real kill is most tempted to corrupt.
            patch.setattr(os, "replace", power_cut)
            with pytest.raises(RuntimeError, match="killed"):
                store.compact()
        # The original event file is untouched and still loads fully...
        assert canonical(store.load("alice")) == before
        # ...the stale scratch is swept on the next open, and compaction
        # completes to an equivalent (now single-snapshot) file.
        reopened = JsonlDirectoryStore(tmp_path / "pods")
        assert list((tmp_path / "pods").glob("*.tmp")) == []
        assert canonical(reopened.load("alice")) == before

    def test_concurrent_append_never_lost(self, tmp_path):
        """An append racing compact() lands in the post-compaction file
        (the per-session lock covers read-fold-replace)."""
        store = self.multi_record_store(tmp_path)
        service = PodService(build_short(), default_database(), store=store)
        done = threading.Event()

        def appender():
            session = service.session("alice")
            for _ in range(20):
                service.submit(
                    StepRequest("alice", {"order": {("newsweek",)}})
                )
            done.set()
            return session

        thread = threading.Thread(target=appender)
        thread.start()
        while not done.is_set():
            store.compact()
        thread.join()
        store.compact()
        assert store.load("alice").steps == 22


class TestStoreLifecycleDefaults:
    def test_inmemory_and_jsonl_have_the_surface(self, tmp_path):
        memory = InMemoryStore()
        with memory as store:
            store.record_created("alice")
            assert store.flush() == 0
        stats = memory.stats()
        assert stats.sessions == 1 and stats.bytes_on_disk == 0
        jsonl = JsonlDirectoryStore(tmp_path / "pods")
        service = PodService(build_short(), default_database(), store=jsonl)
        handle = service.create_session("bob")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        service.close_session(handle)
        service.create_session("carol")
        stats = jsonl.stats()
        assert stats.sessions == 2
        assert stats.open_sessions == 1
        assert stats.bytes_on_disk > 0
        assert stats.events >= 4  # created+step+closed for bob, created carol

    def test_legacy_five_method_store_still_accepted(self):
        from repro.verify import deprecation

        class Legacy:
            def __init__(self):
                self.inner = InMemoryStore()

            def record_created(self, session_id):
                self.inner.record_created(session_id)

            def record_step(self, session_id, steps, state, log_entry):
                self.inner.record_step(session_id, steps, state, log_entry)

            def record_closed(self, session_id):
                self.inner.record_closed(session_id)

            def load(self, session_id):
                return self.inner.load(session_id)

            def session_ids(self):
                return self.inner.session_ids()

        deprecation._warned_keys.discard("pods.legacy-store-protocol")
        with pytest.warns(DeprecationWarning, match="StoreLifecycle"):
            service = PodService(
                build_short(), default_database(), store=Legacy()
            )
        handle = service.create_session("alice")
        service.submit(StepRequest(handle, {"order": {("time",)}}))
        assert service.flush() == 0  # treated as write-through
        with pytest.raises(SessionError, match="not a session store"):
            PodService(build_short(), default_database(), store=42)


class TestBatchedDurabilityExitDrain:
    """Regression: ``durability="batched"`` must not lose its
    write-behind buffer when the process exits without ``flush()``.

    Before the exit hooks, a SIGTERM (or a plain ``sys.exit``) between
    flushes silently dropped every event acknowledged since the last
    commit -- steps the caller had already seen results for.  Now an
    atexit hook drains open batched stores on interpreter exit, and a
    SIGTERM drain runs when the process still had the default handler
    (then re-raises the signal so kill semantics are preserved).
    """

    CHILD = """
import os, sys, time
from repro.commerce.models import build_short, default_database
from repro.pods import PodService, SqliteStore, StepRequest

store = SqliteStore(sys.argv[1], durability="batched", flush_every=10_000)
service = PodService(build_short(), default_database(), store=store)
handle = service.create_session("alice")
service.submit(StepRequest(handle, {"order": {("time",)}}))
service.submit(StepRequest(handle, {"pay": {("time", 55)}}))
# nothing flushed: both steps live only in the write-behind buffer
print("READY", flush=True)
{ending}
"""

    def _run_child(self, tmp_path, ending, kill=False):
        import signal as signal_module
        import subprocess
        import sys as sys_module

        db = str(tmp_path / "sessions.sqlite")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys_module.executable,
                "-c",
                self.CHILD.replace("{ending}", ending),
                db,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().startswith("READY")
            if kill:
                proc.send_signal(signal_module.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        return db, proc.returncode, err

    def _assert_both_steps_durable(self, db):
        store = SqliteStore(db)
        try:
            snapshot = store.load("alice")
            assert snapshot is not None, "buffered session lost"
            assert snapshot.steps == 2
            assert len(snapshot.log_facts) == 2
        finally:
            store.close()

    def test_sigterm_midway_drains_buffer(self, tmp_path):
        db, returncode, err = self._run_child(
            tmp_path, "time.sleep(60)", kill=True
        )
        # killed by SIGTERM (the drain re-raises it), not a clean exit
        assert returncode != 0, err
        self._assert_both_steps_durable(db)

    def test_plain_interpreter_exit_drains_buffer(self, tmp_path):
        db, returncode, err = self._run_child(tmp_path, "sys.exit(0)")
        assert returncode == 0, err
        self._assert_both_steps_durable(db)

    def test_abandoned_store_object_drains_on_gc(self, tmp_path):
        """A batched store dropped without close() flushes best-effort
        when collected -- the in-process safety net under the hooks."""
        import gc

        db = str(tmp_path / "gc.sqlite")
        store = SqliteStore(db, durability="batched", flush_every=10_000)
        store.record_created("gc-session")
        del store
        gc.collect()
        reopened = SqliteStore(db)
        try:
            assert "gc-session" in reopened.session_ids()
        finally:
            reopened.close()

    def test_drain_open_stores_counts_events(self, tmp_path):
        from repro.pods.sqlite_store import drain_open_stores

        store = SqliteStore(
            str(tmp_path / "drain.sqlite"),
            durability="batched",
            flush_every=10_000,
        )
        try:
            store.record_created("a")
            assert drain_open_stores() >= 1
            assert drain_open_stores() == 0  # idempotent once flushed
        finally:
            store.close()
