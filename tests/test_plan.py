"""Tests for the query-plan API.

Planner correctness (cost-based and greedy plans against the scan-based
reference on random programs/databases), golden explain output,
FactStore index statistics, and the cross-step incremental executor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_program, parse_rule
from repro.datalog.evaluate import (
    evaluate_program,
    evaluate_program_naive,
    evaluate_rule,
)
from repro.datalog.plan import (
    CATEGORY_DELTA,
    CATEGORY_RECOMPUTE,
    CATEGORY_STATIC,
    ORDERING_COST,
    ORDERING_GREEDY,
    LogicalPlan,
    Planner,
    compile_program,
)
from repro.errors import PlanError
from repro.relalg import FactStore, IndexStats

values = st.sampled_from(["a", "b", "c", "d"])
pairs = st.frozensets(st.tuples(values, values), max_size=10)
singles = st.frozensets(st.tuples(values), max_size=4)

PROGRAMS = [
    "p(X, Z) :- e(X, Y), e(Y, Z);",
    "p(X, Y) :- e(X, Y), NOT f(Y);",
    "p(X, Y) :- f(X), NOT e(X, Y), e(Y, X);",
    "p(X, Y) :- e(X, Y), X <> Y;",
    "p(X) :- f(X), X <> a;",
    "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);",
    """
    t(X, Y) :- e(X, Y);
    t(X, Z) :- t(X, Y), e(Y, Z);
    p(X, Y) :- f(X), f(Y), NOT t(X, Y), X <> Y;
    """,
    "p(X) :- e(X, X);",
]


class TestIndexStats:
    def test_rows_and_distinct_keys(self):
        store = FactStore({"e": {(1, 2), (1, 3), (2, 3)}})
        stats = store.index_stats("e", (0,))
        assert stats == IndexStats(rows=3, distinct_keys=2)
        assert stats.average_bucket == 1.5

    def test_unknown_predicate_is_empty(self):
        assert FactStore({}).index_stats("e", (0,)) == IndexStats(0, 0)
        assert IndexStats(0, 0).average_bucket == 0.0

    def test_base_layer_delegation(self):
        base = FactStore({"e": {(1, 2), (2, 2)}})
        layered = FactStore({"f": {(1,)}}, base=base)
        assert layered.index_stats("e", (1,)) == IndexStats(2, 1)
        # The index (and its stats) live in the base layer, shared.
        assert base.index_stats("e", (1,)) == IndexStats(2, 1)


class TestLogicalPlan:
    def test_stratification_and_shape(self):
        logical = LogicalPlan.of(
            parse_program(
                "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);"
                "p(X, Y) :- f(X), f(Y), NOT t(X, Y);"
            )
        )
        assert not logical.nonrecursive
        assert logical.idb == {"t", "p"}
        assert len(logical.rules) == 3
        # p negates t, so it sits in a later stratum.
        grouped = logical.strata_rules()
        assert [len(group) for group in grouped] == [2, 1]

    def test_join_graph_links_atoms_sharing_variables(self):
        logical = LogicalPlan.of(
            parse_program("p(X, Z) :- e(X, Y), f(Y, Z), g(W);")
        )
        assert logical.rules[0].join_graph() == {0: {1}, 1: {0}, 2: set()}

    def test_logical_plans_are_cached_per_program(self):
        program = parse_program("p(X) :- q(X);")
        assert LogicalPlan.of(program) is LogicalPlan.of(program)


class TestPlannerCorrectness:
    """Cost-based plans, greedy plans, and the scan-based reference all
    derive identical fixpoints on random programs and databases."""

    @given(st.sampled_from(PROGRAMS), pairs, singles)
    @settings(max_examples=120, deadline=None)
    def test_cost_greedy_and_naive_fixpoints_agree(self, source, edges, unary):
        program = parse_program(source)
        facts = {"e": edges, "f": unary}
        reference = evaluate_program_naive(program, facts)
        for ordering in (ORDERING_COST, ORDERING_GREEDY):
            plan = Planner(ordering).plan(program)
            assert plan.execute(facts) == reference

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_execute_delta_matches_rule_level_delta(self, edges):
        plan = compile_program(parse_program("t(X, Z) :- t(X, Y), e(Y, Z);"))
        rule = parse_rule("t(X, Z) :- t(X, Y), e(Y, Z)")
        split = len(edges) // 2
        old = frozenset(list(edges)[:split])
        delta = {"t": edges - old}
        facts = {"e": edges, "t": edges}
        derived = plan.execute_delta(facts, delta)
        assert derived["t"] == evaluate_rule(rule, facts, delta=delta)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(PlanError):
            Planner("fancy")

    def test_cost_ordering_prefers_selective_index_over_small_relation(self):
        # a: 40 rows spread over 20 keys (bucket 2); b: 30 rows over 2
        # keys (bucket 15).  Greedy picks the smaller relation b; the
        # cost model picks the more selective a.
        facts = {
            "s": frozenset((x,) for x in range(5)),
            "a": frozenset((x % 20, x) for x in range(40)),
            "b": frozenset((y % 2, y) for y in range(30)),
        }
        store = FactStore(facts)
        program = parse_program("q(X) :- s(X), a(X, Y), b(X, Y);")
        node = LogicalPlan.of(program).rules[0]

        cost_plan = Planner(ORDERING_COST).plan(program)
        greedy_plan = Planner(ORDERING_GREEDY).plan(program)
        cost_names = [
            info.atom.predicate
            for info in cost_plan.orderer(store)(node.positive)
        ]
        greedy_names = [
            info.atom.predicate
            for info in greedy_plan.orderer(store)(node.positive)
        ]
        assert cost_names == ["s", "a", "b"]
        assert greedy_names == ["s", "b", "a"]
        # Different orders, identical answers.
        assert cost_plan.execute(facts) == greedy_plan.execute(facts)


JOINGRAPH_PROGRAM = "q(X, W) :- s(X), a(X, Y), c(W);"
# s seeds the order (1 row); a shares X with s but enumerates 4 rows
# per lookup, while the disconnected c has only 2.  Cost alone would
# interleave the Cartesian atom (s -> c -> a); the join graph keeps the
# connected component together (s -> a -> c).
JOINGRAPH_FACTS = {
    "s": frozenset({(0,)}),
    "a": frozenset({(0, 0), (0, 1), (0, 2), (0, 3)}),
    "c": frozenset({(10,), (11,)}),
}


class TestJoinGraphOrdering:
    def orders(self):
        program = parse_program(JOINGRAPH_PROGRAM)
        plan = Planner(ORDERING_COST).plan(program)
        node = LogicalPlan.of(program).rules[0]
        return plan, node

    def names(self, order):
        return [info.atom.predicate for info in order]

    def test_connected_atoms_are_placed_before_disconnected_ones(self):
        plan, node = self.orders()
        store = FactStore(JOINGRAPH_FACTS)
        orderer = plan.orderer(store)
        with_graph = orderer(node.positive, None, node.adjacency)
        without_graph = orderer(node.positive, None, None)
        assert self.names(with_graph) == ["s", "a", "c"]
        assert self.names(without_graph) == ["s", "c", "a"]
        # Orders differ; fixpoints do not.
        assert plan.execute(JOINGRAPH_FACTS)["q"] == frozenset(
            (0, w) for w in (10, 11)
        )

    def test_kill_switch_restores_cost_only_expansion(self, monkeypatch):
        plan, node = self.orders()
        store = FactStore(JOINGRAPH_FACTS)
        monkeypatch.setenv("REPRO_JOINGRAPH", "0")
        orderer = plan.orderer(store)
        assert not orderer.joingraph
        assert self.names(orderer(node.positive, None, node.adjacency)) == [
            "s", "c", "a",
        ]

    def test_delta_occurrence_still_leads_the_order(self):
        plan, node = self.orders()
        orderer = plan.orderer(FactStore(JOINGRAPH_FACTS))
        first = node.positive[2]  # c, the disconnected atom
        order = orderer(node.positive, first, node.adjacency)
        assert self.names(order) == ["c", "s", "a"]


EXPLAIN_JOINGRAPH = """\
plan: ordering=cost, 1 rules, 1 strata, nonrecursive
stratum 1:
  q(X, W) :- s(X), a(X, Y), c(W)
    join: s(X) [rows=1, est=1] -> a(X, Y) [rows=4, est=4] -> c(W) [rows=2, est=2]"""


EXPLAIN_PROGRAM = "p(X, Z) :- e(X, Y), f(Y, Z), X <> Z;"
EXPLAIN_FACTS = {
    "e": frozenset({(1, 2), (1, 3), (2, 3)}),
    "f": frozenset({(2, 4), (3, 4), (3, 5)}),
}

EXPLAIN_WITH_STORE = """\
plan: ordering=cost, 1 rules, 1 strata, nonrecursive
stratum 1:
  p(X, Z) :- e(X, Y), f(Y, Z), X <> Z
    join: e(X, Y) [rows=3, est=3] -> f(Y, Z) [rows=3, est=1.5]
    check after f(Y, Z): X <> Z"""

EXPLAIN_WITHOUT_STORE = """\
plan: ordering=cost, 1 rules, 1 strata, nonrecursive (no statistics: static order)
stratum 1:
  p(X, Z) :- e(X, Y), f(Y, Z), X <> Z
    join: e(X, Y) -> f(Y, Z)
    check after f(Y, Z): X <> Z"""


class TestExplain:
    def test_golden_with_store(self):
        plan = compile_program(parse_program(EXPLAIN_PROGRAM))
        assert plan.explain(EXPLAIN_FACTS) == EXPLAIN_WITH_STORE

    def test_golden_joingraph_order(self):
        plan = compile_program(parse_program(JOINGRAPH_PROGRAM))
        assert plan.explain(JOINGRAPH_FACTS) == EXPLAIN_JOINGRAPH

    def test_golden_without_store(self):
        plan = compile_program(parse_program(EXPLAIN_PROGRAM))
        assert plan.explain() == EXPLAIN_WITHOUT_STORE

    def test_explain_is_stable(self):
        plan = compile_program(parse_program(EXPLAIN_PROGRAM))
        store = FactStore(EXPLAIN_FACTS)
        assert plan.explain(store) == plan.explain(store)

    def test_facts_and_empty_body_render(self):
        plan = compile_program(parse_program("p(a).; q :- NOT r(b);"))
        text = plan.explain({})
        assert "join: (no positive atoms)" in text
        assert "pre-check: NOT r(b)" in text


INCREMENTAL_PROGRAM = """
a(X) :- in(X, Y);
b(X, Y) :- db(X, Y), NOT mono(X, Y);
c(X, Z) :- mono(X, Y), db(Y, Z);
d(X, Y) :- db(X, Y), X <> Y;
g(X, Y) :- mono(X, Y), NOT in(X, Y);
"""

DB_FACTS = frozenset({("a", "b"), ("b", "c"), ("c", "c"), ("b", "d")})


class TestIncrementalExecutor:
    def build(self):
        plan = compile_program(parse_program(INCREMENTAL_PROGRAM))
        return plan, plan.new_incremental(volatile=["in"], monotone=["mono"])

    def test_rule_categories(self):
        _plan, executor = self.build()
        assert executor.categories == [
            CATEGORY_RECOMPUTE,  # positive volatile atom
            CATEGORY_RECOMPUTE,  # negated monotone atom
            CATEGORY_DELTA,  # positive monotone + database body
            CATEGORY_STATIC,  # database-only body
            CATEGORY_RECOMPUTE,  # negated volatile atom
        ]

    def test_non_flat_program_rejected(self):
        plan = compile_program(parse_program("p(X) :- q(X); r(X) :- p(X);"))
        with pytest.raises(PlanError, match="flat"):
            plan.new_incremental(volatile=["q"], monotone=[])

    def test_overlapping_classes_rejected(self):
        plan = compile_program(parse_program("p(X) :- q(X);"))
        with pytest.raises(PlanError, match="volatile and monotone"):
            plan.new_incremental(volatile=["q"], monotone=["q"])

    @given(
        st.lists(
            st.tuples(pairs, st.frozensets(st.tuples(values, values),
                                           max_size=3)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stepping_matches_full_reevaluation(self, script):
        """Across any step sequence (volatile inputs, growing monotone
        facts), the executor derives exactly what a from-scratch
        execute() derives."""
        plan, executor = self.build()
        monotone: frozenset[tuple] = frozenset()
        for volatile_rows, additions in script:
            monotone = monotone | additions
            facts = {"in": volatile_rows, "mono": monotone, "db": DB_FACTS}
            stepped = executor.step(facts, {"mono": monotone})
            full = plan.execute(facts)
            for head in ("a", "b", "c", "d", "g"):
                assert stepped[head] == full[head], head

    def test_counters_track_delta_and_static_reuse(self):
        _plan, executor = self.build()
        executor.step({"in": set(), "mono": set(), "db": DB_FACTS},
                      {"mono": frozenset()})
        assert executor.counters.full_rule_evals == 5
        executor.step(
            {"in": set(), "mono": {("a", "b")}, "db": DB_FACTS},
            {"mono": frozenset({("a", "b")})},
        )
        assert executor.counters.static_cache_hits == 1
        assert executor.counters.delta_rule_evals == 1
        executor.step(
            {"in": set(), "mono": {("a", "b")}, "db": DB_FACTS},
            {"mono": frozenset({("a", "b")})},
        )
        # Monotone facts unchanged: the delta rule is skipped outright.
        assert executor.counters.delta_rules_skipped == 1


class TestEvaluateWrappers:
    """evaluate_program / evaluate_rule are thin wrappers over the
    shared compiled plans and keep their original semantics."""

    def test_program_wrapper_matches_plan_execute(self):
        program = parse_program("p(X, Z) :- e(X, Y), e(Y, Z);")
        facts = {"e": frozenset({(1, 2), (2, 3)})}
        assert evaluate_program(program, facts) == compile_program(
            program
        ).execute(facts)

    def test_plans_are_shared_per_program(self):
        program = parse_program("p(X) :- q(X);")
        assert compile_program(program) is compile_program(program)
        assert compile_program(program) is not compile_program(
            program, ORDERING_GREEDY
        )
