"""Tests for the commerce layer: models, workloads, customization, tools."""

import pytest

from repro.commerce import (
    CatalogGenerator,
    ProgressAdvisor,
    SessionGenerator,
    is_syntactically_safe_customization,
    minimal_logs,
    new_relations_reaching_log,
    random_log,
    removable_log_relations,
)
from repro.commerce.models import build_guarded_store
from repro.commerce.workloads import tamper_log
from repro.core.acceptors import is_error_free


class TestCatalog:
    def test_deterministic(self):
        gen = CatalogGenerator(seed=42)
        assert gen.generate(10) == gen.generate(10)

    def test_size(self):
        catalog = CatalogGenerator(seed=1).generate(25)
        assert len(catalog.products) == 25
        assert len(catalog.prices) == 25

    def test_availability_fraction(self):
        catalog = CatalogGenerator(seed=1, availability=1.0).generate(10)
        assert len(catalog.available) == 10
        empty = CatalogGenerator(seed=1, availability=0.0).generate(10)
        assert not empty.available

    def test_as_database(self):
        db = CatalogGenerator(seed=3).generate(4).as_database()
        assert len(db["price"]) == 4

    def test_bad_availability_rejected(self):
        with pytest.raises(ValueError):
            CatalogGenerator(availability=1.5)


class TestWorkloads:
    def test_session_is_deterministic(self):
        catalog = CatalogGenerator(seed=0).generate(5)
        gen = SessionGenerator(catalog, seed=1)
        assert gen.session(10) == gen.session(10)

    def test_session_runs_clean(self, short):
        catalog = CatalogGenerator(seed=0).generate(5)
        run, logs = random_log(short, catalog, 12, seed=4)
        assert len(logs) == 12

    def test_sessions_pay_correct_prices_mostly(self):
        catalog = CatalogGenerator(seed=0).generate(5)
        gen = SessionGenerator(catalog, seed=2, error_rate=0.0)
        for step in gen.session(30):
            for product, amount in step.get("pay", ()):
                assert amount == catalog.priced(product)

    def test_tampered_log_differs_and_is_invalid(self, short):
        from repro.verify import is_valid_log

        catalog = CatalogGenerator(seed=0).generate(4)
        _run, logs = random_log(short, catalog, 6, seed=5)
        forged = tamper_log(logs, catalog, seed=6)
        assert list(forged) != list(logs)
        assert not is_valid_log(short, catalog.as_database(), forged).valid


class TestGuardedStore:
    def test_valid_flow_error_free(self, catalog_db):
        guarded = build_guarded_store()
        run = guarded.run(
            catalog_db, [{"order": {("time",)}}, {"pay": {("time", 55)}}]
        )
        assert is_error_free(run)

    def test_bad_price_flagged(self, catalog_db):
        guarded = build_guarded_store()
        run = guarded.run(catalog_db, [{"pay": {("time", 99)}}])
        assert not is_error_free(run)

    def test_cancel_without_order_flagged(self, catalog_db):
        guarded = build_guarded_store()
        run = guarded.run(catalog_db, [{"cancel": {("time",)}}])
        assert not is_error_free(run)

    def test_same_step_order_and_pay_allowed(self, catalog_db):
        guarded = build_guarded_store()
        run = guarded.run(
            catalog_db, [{"order": {("time",)}, "pay": {("time", 55)}}]
        )
        assert is_error_free(run)


class TestCustomization:
    def test_friendly_is_safe_customization(self, short, friendly):
        report = is_syntactically_safe_customization(short, friendly)
        assert report.safe
        assert not report.problems

    def test_new_input_reaching_log_detected(self, short):
        # A new input that feeds a logged output relation violates the
        # syntactic condition.
        custom = short.with_extra_rules(
            "deliver(X) :- rush(X), price(X,Y);",
            extra_inputs={"rush": 1},
        )
        report = is_syntactically_safe_customization(short, custom)
        assert not report.safe
        assert "rush" in report.offending_inputs

    def test_reaching_set_computation(self, short, friendly):
        assert new_relations_reaching_log(short, friendly) == set()

    def test_dropped_rule_detected(self, short):
        from repro.core.spocus import SpocusTransducer
        from repro.datalog.ast import Program

        fewer = SpocusTransducer(
            short.schema.inputs,
            short.schema.outputs,
            short.schema.database,
            Program(short.output_program.rules[:1]),
            short.schema.log,
        )
        report = is_syntactically_safe_customization(short, fewer)
        assert not report.safe

    def test_redefined_base_output_detected(self, short):
        custom = short.with_extra_rules(
            "deliver(X) :- order(X), price(X,Y);"
        )
        report = is_syntactically_safe_customization(short, custom)
        assert not report.safe

    def test_log_mismatch_detected(self, short, friendly):
        relogged = friendly.with_log(("sendbill",))
        report = is_syntactically_safe_customization(short, relogged)
        assert not report.safe


class TestLogMinimization:
    def test_deliver_removable_from_short(self, short):
        # The paper: "one can remove the relation deliver from the log
        # without losing any information."
        db = {"price": {("a", 10)}, "available": {("a",)}}
        removable = removable_log_relations(short, db)
        assert "deliver" in removable

    def test_pay_not_removable(self, short):
        db = {"price": {("a", 10)}, "available": {("a",)}}
        removable = removable_log_relations(short, db)
        assert "pay" not in removable

    def test_minimal_log_excludes_deliver(self, short):
        db = {"price": {("a", 10)}, "available": {("a",)}}
        minima = minimal_logs(short, db)
        assert minima
        assert all("deliver" not in m for m in minima)


class TestProgressAdvisor:
    def test_plan_to_delivery(self, short, catalog_db):
        advisor = ProgressAdvisor(short, catalog_db)
        suggestion = advisor.advise({"deliver": {("time",)}})
        assert suggestion is not None
        assert suggestion.steps == 2
        assert "order" in suggestion.next_input

    def test_plan_respects_history(self, short, catalog_db):
        advisor = ProgressAdvisor(short, catalog_db)
        suggestion = advisor.advise(
            {"deliver": {("time",)}}, history=[{"order": {("time",)}}]
        )
        assert suggestion is not None
        assert suggestion.steps == 1
        assert "pay" in suggestion.next_input

    def test_unreachable_goal(self, short, catalog_db):
        advisor = ProgressAdvisor(short, catalog_db)
        assert advisor.advise({"deliver": {("vogue",)}}, max_depth=2) is None

    def test_plan_replays(self, short, catalog_db):
        advisor = ProgressAdvisor(short, catalog_db)
        suggestion = advisor.advise({"deliver": {("le_monde",)}})
        run = short.run(catalog_db, list(suggestion.plan))
        assert ("le_monde",) in run.last_output["deliver"]
