"""The scenario subsystem: registry, traffic, runner, parity, shims.

Covers the PR 8 contract:

* registry behaviors (names, duplicates, unknown lookups);
* the seeded traffic layer (Zipf skew, heavy-tailed lengths, open-loop
  schedules that preserve per-session order);
* every registered scenario is byte-identical across reruns with the
  same seed, serial-vs-concurrent identical under ``submit_batch``,
  and clean under its own ``OnlineAuditor`` specs -- except the
  adversarial scenario, whose violations are the point;
* ``run_scenario`` drives the identical traffic through ``PodService``,
  ``ShardedPodService``, session stores, a ``PodClient`` over HTTP,
  and ``python -m repro.server --scenario`` -- same digest everywhere;
* the ``simulate_concurrent_customers`` deprecation shim warns once
  and stays in exact parity with the registry's ``commerce`` scenario.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import warnings
from functools import partial
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commerce.models import build_friendly
from repro.commerce.workloads import simulate_concurrent_customers
from repro.errors import ScenarioError
from repro.pods import JsonlDirectoryStore, PodService, SqliteStore
from repro.scenarios import (
    Scenario,
    ZipfSampler,
    get_scenario,
    list_scenarios,
    lognormal_length,
    log_digest,
    make_auditor,
    open_loop_schedule,
    register_scenario,
    run_scenario,
    scenario_database,
    scenario_names,
    scenario_transducer,
)
from repro.server import PodClient, PodServer
from repro.verify import deprecation

ALL_SCENARIOS = scenario_names()
NEW_SCENARIOS = ("feed-delivery", "auction", "data-exchange", "adversarial")

#: fraud-detection decides a BSR sentence per audited step; keep it tiny.
def _size(name: str) -> dict:
    if name == "fraud-detection":
        return {"sessions": 3, "steps": 3}
    return {"sessions": 6, "steps": 5}


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


class TestRegistry:
    def test_the_new_scenarios_are_registered(self):
        assert set(NEW_SCENARIOS) <= set(ALL_SCENARIOS)
        # ... alongside the migrated commerce workload and the two
        # example programs (satellites 1 and 2).
        assert {"commerce", "guarded-store", "fraud-detection"} <= set(
            ALL_SCENARIOS
        )

    def test_list_scenarios_sorted_and_described(self):
        scenarios = list_scenarios()
        assert [s.name for s in scenarios] == sorted(ALL_SCENARIOS)
        assert all(s.description for s in scenarios)

    def test_unknown_name_is_a_scenario_error_naming_the_known(self):
        with pytest.raises(ScenarioError, match="feed-delivery"):
            get_scenario("no-such-scenario")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):

            @register_scenario
            class Duplicate(Scenario):
                name = "commerce"

    def test_unnamed_scenario_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty"):

            @register_scenario
            class Nameless(Scenario):
                pass

    def test_only_adversarial_expects_violations(self):
        expecting = [
            s.name for s in list_scenarios() if s.expects_violations
        ]
        assert expecting == ["adversarial"]

    def test_transducer_factory_is_picklable(self):
        import pickle

        factory = partial(scenario_transducer, "auction")
        assert pickle.loads(pickle.dumps(factory))().schema


class TestTraffic:
    def test_zipf_is_seeded_and_skewed(self):
        sampler = ZipfSampler(20, exponent=1.1)
        rng = random.Random("t")
        draws = [sampler.sample(rng) for _ in range(2000)]
        rng = random.Random("t")
        again = [sampler.sample(rng) for _ in range(2000)]
        assert draws == again
        counts = [draws.count(rank) for rank in range(20)]
        assert counts[0] > counts[10] > 0
        assert counts[0] > len(draws) / 10  # the head dominates uniform

    def test_lognormal_mean_and_clamp(self):
        rng = random.Random("lengths")
        lengths = [lognormal_length(rng, 8) for _ in range(2000)]
        assert all(1 <= n <= 32 for n in lengths)  # max defaults to 4*mean
        assert 6 <= sum(lengths) / len(lengths) <= 10
        assert max(lengths) > 14  # the tail is actually heavy

    def test_open_loop_schedule_interleaves_but_preserves_session_order(self):
        workload = get_scenario("feed-delivery").workload(
            sessions=8, mean_steps=6, seed=1
        )
        schedule = open_loop_schedule(workload, seed=1)
        assert len(schedule) == workload.total_steps
        per_session: dict[str, list] = {sid: [] for sid in workload.sessions}
        for request in schedule:
            per_session[request.session].append(request.inputs)
        for sid in workload.sessions:
            assert per_session[sid] == list(workload.scripts[sid])
        # Sessions genuinely interleave (not one block per session).
        order = [request.session for request in schedule]
        assert order != sorted(order)
        assert schedule == open_loop_schedule(workload, seed=1)
        assert schedule != open_loop_schedule(workload, seed=2)


class TestEveryScenario:
    """The three per-scenario invariants of the issue, hypothesis-driven."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=3, deadline=None)
    def test_rerun_with_same_seed_is_byte_identical(self, name, seed):
        first = run_scenario(name, seed=seed, **_size(name))
        second = run_scenario(name, seed=seed, **_size(name))
        assert first.log_digest is not None
        assert first.log_digest == second.log_digest
        assert first.audit_checks == second.audit_checks
        assert first.audit_violations == second.audit_violations

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    @given(seed=st.integers(min_value=0, max_value=40), concurrency=st.sampled_from([2, 4]))
    @settings(max_examples=3, deadline=None)
    def test_serial_vs_concurrent_submit_batch_identical(
        self, name, seed, concurrency
    ):
        serial = run_scenario(name, seed=seed, concurrency=1, **_size(name))
        threaded = run_scenario(
            name, seed=seed, concurrency=concurrency, **_size(name)
        )
        assert serial.log_digest == threaded.log_digest
        assert serial.audit_violations == threaded.audit_violations

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=3, deadline=None)
    def test_clean_under_own_auditor_except_adversarial(self, name, seed):
        report = run_scenario(name, seed=seed, **_size(name))
        assert report.audit_checks > 0
        if get_scenario(name).expects_violations:
            assert report.audit_violations > 0
        else:
            assert report.audit_violations == 0
            assert report.findings == 0


class TestAdversarial:
    def test_findings_carry_replayable_traces(self):
        scenario = get_scenario("adversarial")
        service = PodService(
            scenario.build_transducer(),
            scenario.database(seed=2),
            auditor=make_auditor(scenario),
        )
        report = run_scenario(
            "adversarial", service=service, sessions=4, steps=5, seed=2
        )
        findings = service.audit_findings()
        assert report.audit_violations > 0
        assert len(findings) == report.audit_violations
        finding = findings[0]
        assert finding.trace.reproduces(
            scenario.build_transducer(), scenario.database(seed=2)
        )

    def test_unaudited_run_still_produces_the_same_logs(self):
        audited = run_scenario("adversarial", sessions=4, steps=5, seed=2)
        unaudited = run_scenario(
            "adversarial", sessions=4, steps=5, seed=2, audit=False
        )
        assert audited.log_digest == unaudited.log_digest
        assert unaudited.audit_checks == 0


class TestServiceSurfaces:
    """One driver, same digest: stores, shards, HTTP, module entry."""

    def test_store_backends_agree(self, tmp_path):
        baseline = run_scenario("commerce", sessions=5, steps=5, seed=9)
        sqlite = run_scenario(
            "commerce",
            sessions=5,
            steps=5,
            seed=9,
            store=SqliteStore(tmp_path / "pods.sqlite"),
        )
        jsonl = run_scenario(
            "commerce",
            sessions=5,
            steps=5,
            seed=9,
            store=JsonlDirectoryStore(tmp_path / "jsonl"),
        )
        assert baseline.log_digest == sqlite.log_digest == jsonl.log_digest

    def test_sharded_service_agrees(self):
        flat = run_scenario("feed-delivery", sessions=8, steps=5, seed=4)
        sharded = run_scenario(
            "feed-delivery", sessions=8, steps=5, seed=4, shards=3
        )
        assert flat.log_digest == sharded.log_digest
        assert flat.audit_violations == sharded.audit_violations == 0

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_http_vs_in_process_parity(self, name):
        seed = 13
        size = _size(name)
        local = run_scenario(name, seed=seed, **size)
        with PodServer(
            partial(scenario_transducer, name),
            scenario_database(name, seed=seed),
            workers=1,
        ) as server:
            client = PodClient(server.url, scenario_transducer(name))
            remote = run_scenario(name, service=client, seed=seed, **size)
        assert remote.log_digest == local.log_digest
        assert remote.total_steps == local.total_steps

    def test_module_server_scenario_end_to_end(self):
        seed = 11
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--scenario",
                "auction",
                "--workers",
                "1",
                "--db-seed",
                str(seed),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            url = line.strip().split()[-1]
            client = PodClient(url, scenario_transducer("auction"))
            remote = run_scenario(
                "auction", service=client, sessions=4, steps=4, seed=seed
            )
            local = run_scenario("auction", sessions=4, steps=4, seed=seed)
            assert remote.log_digest == local.log_digest
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert "shut down cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


class TestCommerceShim:
    pytestmark = pytest.mark.filterwarnings(
        "ignore:simulate_concurrent_customers:DeprecationWarning"
    )

    def test_warns_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(deprecation, "_warned_keys", set())
        catalog = get_scenario("commerce").catalog(scale=5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):
                simulate_concurrent_customers(
                    build_friendly(), catalog, sessions=2, steps_per_session=2
                )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "run_scenario" in str(deprecations[0].message)

    def test_exact_parity_with_the_commerce_scenario(self):
        """Same catalog, same session ids, same per-customer scripts:
        the shim and the registry scenario produce identical logs."""
        seed, scale, sessions, steps = 5, 12, 5, 6
        catalog = get_scenario("commerce").catalog(seed=seed, scale=scale)
        legacy_service = PodService(
            build_friendly(), catalog.as_database(), keep_logs=True
        )
        simulate_concurrent_customers(
            build_friendly(),
            catalog,
            sessions=sessions,
            steps_per_session=steps,
            seed=seed,
            service=legacy_service,
        )
        ids = legacy_service.session_ids()
        assert ids == [f"customer-{n:06d}" for n in range(sessions)]
        registry = run_scenario(
            "commerce", sessions=sessions, steps=steps, seed=seed, scale=scale
        )
        assert log_digest(legacy_service, ids) == registry.log_digest


class TestCommandLine:
    def test_list_names_every_scenario(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.scenarios", "--list"],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            check=True,
        ).stdout
        for name in ALL_SCENARIOS:
            assert name in out

    def test_run_emits_a_json_report(self):
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.scenarios",
                "--run",
                "data-exchange",
                "--sessions",
                "4",
                "--steps",
                "4",
                "--json",
            ],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            check=True,
        ).stdout
        report = json.loads(out)
        assert report["scenario"] == "data-exchange"
        assert report["total_steps"] > 0
        assert report["audit_violations"] == 0
