"""Tests for relation schemas and instances."""

import pytest

from repro.errors import ArityError, SchemaError, UnknownRelationError
from repro.relalg import DatabaseSchema, Instance, RelationSchema


class TestRelationSchema:
    def test_str_with_attributes(self):
        rel = RelationSchema("price", 2, ("item", "amount"))
        assert str(rel) == "price(item, amount)"

    def test_str_without_attributes(self):
        assert str(RelationSchema("price", 2)) == "price/2"

    def test_zero_arity_allowed(self):
        assert RelationSchema("ok", 0).arity == 0

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)

    def test_attribute_count_must_match(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", 2, ("only-one",))


class TestDatabaseSchema:
    def test_of_constructor(self):
        schema = DatabaseSchema.of(price=2, available=1)
        assert schema.arity("price") == 2
        assert schema.arity("available") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("r", 1), RelationSchema("r", 2)])

    def test_unknown_relation_raises(self):
        schema = DatabaseSchema.of(r=1)
        with pytest.raises(UnknownRelationError):
            schema.relation("missing")

    def test_restrict(self):
        schema = DatabaseSchema.of(a=1, b=2, c=3)
        sub = schema.restrict(["a", "c"])
        assert set(sub.names) == {"a", "c"}

    def test_restrict_unknown_raises(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema.of(a=1).restrict(["b"])

    def test_merge_disjoint(self):
        merged = DatabaseSchema.of(a=1).merge(DatabaseSchema.of(b=2))
        assert set(merged.names) == {"a", "b"}

    def test_merge_conflicting_arity_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema.of(a=1).merge(DatabaseSchema.of(a=2))

    def test_merge_same_relation_ok(self):
        merged = DatabaseSchema.of(a=1).merge(DatabaseSchema.of(a=1))
        assert len(merged) == 1

    def test_disjoint_with(self):
        assert DatabaseSchema.of(a=1).disjoint_with(DatabaseSchema.of(b=1))
        assert not DatabaseSchema.of(a=1).disjoint_with(DatabaseSchema.of(a=1))

    def test_equality(self):
        assert DatabaseSchema.of(a=1, b=2) == DatabaseSchema.of(b=2, a=1)


class TestInstance:
    def test_empty(self):
        schema = DatabaseSchema.of(r=2)
        inst = Instance.empty(schema)
        assert inst.is_empty()
        assert inst["r"] == frozenset()

    def test_arity_checked(self):
        schema = DatabaseSchema.of(r=2)
        with pytest.raises(ArityError):
            Instance(schema, {"r": {("too", "many", "columns")}})

    def test_unknown_relation_rejected(self):
        schema = DatabaseSchema.of(r=2)
        with pytest.raises(UnknownRelationError):
            Instance(schema, {"s": {(1, 2)}})

    def test_with_facts_is_persistent(self):
        schema = DatabaseSchema.of(r=1)
        base = Instance.empty(schema)
        extended = base.with_facts("r", {("a",)})
        assert base.is_empty()
        assert extended["r"] == {("a",)}

    def test_with_relation_replaces(self):
        schema = DatabaseSchema.of(r=1)
        inst = Instance(schema, {"r": {("a",)}})
        replaced = inst.with_relation("r", {("b",)})
        assert replaced["r"] == {("b",)}

    def test_union(self):
        schema = DatabaseSchema.of(r=1)
        a = Instance(schema, {"r": {("a",)}})
        b = Instance(schema, {"r": {("b",)}})
        assert a.union(b)["r"] == {("a",), ("b",)}

    def test_union_schema_mismatch(self):
        a = Instance(DatabaseSchema.of(r=1))
        b = Instance(DatabaseSchema.of(s=1))
        with pytest.raises(SchemaError):
            a.union(b)

    def test_difference(self):
        schema = DatabaseSchema.of(r=1)
        a = Instance(schema, {"r": {("a",), ("b",)}})
        b = Instance(schema, {"r": {("b",)}})
        assert a.difference(b)["r"] == {("a",)}

    def test_restrict_is_log_projection(self):
        schema = DatabaseSchema.of(r=1, s=1)
        inst = Instance(schema, {"r": {("a",)}, "s": {("b",)}})
        log = inst.restrict(["r"])
        assert set(log.schema.names) == {"r"}
        assert log["r"] == {("a",)}

    def test_active_domain(self):
        schema = DatabaseSchema.of(r=2)
        inst = Instance(schema, {"r": {("a", 1), ("b", 2)}})
        assert inst.active_domain() == {"a", "b", 1, 2}

    def test_total_facts_and_iteration(self):
        schema = DatabaseSchema.of(r=1, s=1)
        inst = Instance(schema, {"r": {("a",)}, "s": {("b",), ("c",)}})
        assert inst.total_facts() == 3
        assert len(list(inst.facts())) == 3

    def test_equality_and_hash(self):
        schema = DatabaseSchema.of(r=1)
        a = Instance(schema, {"r": {("a",)}})
        b = Instance(schema, {"r": {("a",)}})
        assert a == b
        assert hash(a) == hash(b)

    def test_project_onto_drops_and_pads(self):
        inst = Instance(DatabaseSchema.of(r=1, s=1), {"r": {("a",)}})
        target = DatabaseSchema.of(r=1, t=2)
        hosted = inst.project_onto(target)
        assert hosted["r"] == {("a",)}
        assert hosted["t"] == frozenset()
