"""Tests for the compiled rule kernels and the columnar store they read.

The load-bearing suite is the hypothesis equivalence block: over random
programs and databases, the compiled-kernel executor and the reference
interpreter (``REPRO_COMPILED_KERNELS=0``) derive byte-identical
fixpoints, and the columnar access paths (row lists, columns, id
buckets) agree with the tuple-bucket index and with brute force.  The
unit tests pin the kernel mechanics the equivalence suite exercises
only probabilistically: the three access modes, delta-entry constant
filtering, repeated-variable rechecks, and the order/kernel memos with
their counters and kill switches.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_program
from repro.datalog.evaluate import evaluate_program_naive
from repro.datalog.plan import (
    ORDERING_COST,
    EvalCounters,
    LogicalPlan,
    Planner,
    compile_kernel,
    kernels_enabled,
)
from repro.datalog.plan.physical import make_orderer
from repro.errors import PlanError
from repro.relalg import FactStore, clear_intern_pools
from repro.relalg.indexes import PAD
from repro.relalg.interning import intern_constant, intern_row

values = st.sampled_from(["a", "b", "c", "d"])
pairs = st.frozensets(st.tuples(values, values), max_size=10)
singles = st.frozensets(st.tuples(values), max_size=4)

# Same shapes as tests/test_plan.py, plus bodies that hit every kernel
# mode: fully-bound membership probes, constant key parts, repeated
# variables, and multi-rule recursion (the delta entry point).
PROGRAMS = [
    "p(X, Z) :- e(X, Y), e(Y, Z);",
    "p(X, Y) :- e(X, Y), NOT f(Y);",
    "p(X, Y) :- f(X), NOT e(X, Y), e(Y, X);",
    "p(X, Y) :- e(X, Y), X <> Y;",
    "p(X) :- f(X), X <> a;",
    "p(X) :- e(X, X);",
    "p(X) :- e(a, X);",
    "p(X) :- f(X), e(X, X);",
    "p(X, Z) :- e(X, Y), e(Y, Z), NOT e(X, Z), X <> Z;",
    "t(X, Y) :- e(X, Y); t(X, Z) :- t(X, Y), e(Y, Z);",
    """
    t(X, Y) :- e(X, Y);
    t(X, Z) :- t(X, Y), e(Y, Z);
    p(X, Y) :- f(X), f(Y), NOT t(X, Y), X <> Y;
    """,
]


@contextmanager
def env(name, value):
    """Set one environment variable for the duration of a block."""
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            del os.environ[name]
        else:
            os.environ[name] = previous


def fresh_plan(source):
    """An uncached plan (private memos, exact counter assertions)."""
    return Planner(ORDERING_COST).plan(parse_program(source))


class TestKernelInterpreterEquivalence:
    """Kernels derive exactly what the reference interpreter derives.

    The kill switch is sampled per execution, so the same shared plan
    object runs both modes; its per-rule memos are keyed so the modes
    never read each other's entries.
    """

    @given(st.sampled_from(PROGRAMS), pairs, singles)
    @settings(max_examples=120, deadline=None)
    def test_fixpoints_agree_across_modes(self, source, edges, unary):
        plan = fresh_plan(source)
        facts = {"e": edges, "f": unary}
        with env("REPRO_COMPILED_KERNELS", "1"):
            compiled = plan.execute(facts)
        with env("REPRO_COMPILED_KERNELS", "0"):
            interpreted = plan.execute(facts)
        assert compiled == interpreted
        assert compiled == evaluate_program_naive(parse_program(source), facts)

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_delta_passes_agree_across_modes(self, edges):
        plan = fresh_plan("t(X, Z) :- t(X, Y), e(Y, Z);")
        split = len(edges) // 2
        old = frozenset(list(edges)[:split])
        delta = {"t": edges - old}
        facts = {"e": edges, "t": edges}
        with env("REPRO_COMPILED_KERNELS", "1"):
            compiled = plan.execute_delta(facts, delta)
        with env("REPRO_COMPILED_KERNELS", "0"):
            interpreted = plan.execute_delta(facts, delta)
        assert compiled == interpreted


class TestColumnarStoreEquivalence:
    """Columnar access (row list / columns / id buckets) vs brute force."""

    @given(pairs, st.sampled_from([(0,), (1,), (0, 1)]))
    @settings(max_examples=60, deadline=None)
    def test_id_buckets_match_tuple_buckets_and_brute_force(
        self, edges, positions
    ):
        store = FactStore({"e": edges})
        rows = store.row_list("e")
        assert set(rows) == set(edges)
        keys = {tuple(row[p] for p in positions) for row in edges}
        for key in keys:
            via_ids = sorted(
                rows[rid] for rid in store.lookup_ids("e", positions, key)
            )
            via_tuples = sorted(store.lookup("e", positions, key))
            brute = sorted(
                row
                for row in edges
                if all(row[p] == k for p, k in zip(positions, key))
            )
            assert via_ids == via_tuples == brute
        # A key no row has yields an empty bucket, not a KeyError.
        assert store.lookup_ids("e", positions, ("nope",) * len(positions)) == ()

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_columns_are_row_list_projections(self, edges):
        store = FactStore({"e": edges})
        rows = store.row_list("e")
        for position in (0, 1):
            column = store.column("e", position)
            assert list(column) == [row[position] for row in rows]

    def test_columns_pad_short_rows_with_sentinel(self):
        store = FactStore({"m": {(1,), (1, 2), (3, 4)}})
        rows = store.row_list("m")
        column = store.column("m", 1)
        assert [
            row[1] if len(row) > 1 else PAD for row in rows
        ] == list(column)
        # Short rows never appear in buckets wider than they are.
        hits = {
            rows[rid] for rid in store.lookup_ids("m", (1,), (2,))
        }
        assert hits == {(1, 2)}

    def test_add_maintains_ids_columns_and_buckets_incrementally(self):
        store = FactStore({"e": {(1, 2)}})
        # Touch every lazy structure, then grow the relation.
        store.row_list("e")
        store.column("e", 0)
        store.lookup_ids("e", (0,), (1,))
        before = store.version
        fresh = store.add("e", [(1, 3), (1, 2)])
        assert fresh == {(1, 3)}
        assert store.version > before
        rows = store.row_list("e")
        assert rows[-1] == (1, 3)
        assert list(store.column("e", 0)) == [row[0] for row in rows]
        assert sorted(
            rows[rid] for rid in store.lookup_ids("e", (0,), (1,))
        ) == [(1, 2), (1, 3)]

    def test_index_stats_counts_genuine_none_values(self):
        # A data value of None is distinct-counted; only the PAD
        # sentinel (arity padding for short rows) is excluded.
        store = FactStore({"m": {(1,), (1, None), (3, 4)}})
        assert store.index_stats("m", (1,)).distinct_keys == 2

    def test_layered_ids_delegate_to_base(self):
        base = FactStore({"e": frozenset({(1, 2), (2, 3)})})
        base_rows = base.row_list("e")
        layered = FactStore({"f": {(9,)}}, base=base)
        assert layered.row_list("e") is base_rows
        for key in ((1,), (2,)):
            assert layered.lookup_ids("e", (0,), key) == base.lookup_ids(
                "e", (0,), key
            )

    def test_stats_cache_invalidates_on_version_bump(self):
        store = FactStore({"e": {(1, 2), (2, 2)}})
        assert store.index_stats("e", (1,)).distinct_keys == 1
        store.add("e", [(3, 9)])
        assert store.index_stats("e", (1,)).distinct_keys == 2


class TestKernelMechanics:
    def rule_node(self, source):
        return LogicalPlan.of(parse_program(source)).rules[0]

    def run_full(self, source, facts):
        node = self.rule_node(source)
        order = node.positive
        checks_at = [[] for _ in order]
        for check in node.checks:
            checks_at[-1].append(check)
        kernel = compile_kernel(node, order, checks_at)
        derived: set = set()
        kernel.run_full(FactStore(facts), derived)
        return derived

    def test_constant_key_parts(self):
        derived = self.run_full(
            "p(X) :- e(a, X);", {"e": {("a", "b"), ("c", "d")}}
        )
        assert derived == {("b",)}

    def test_repeated_variable_recheck(self):
        derived = self.run_full(
            "p(X) :- e(X, X);", {"e": {("a", "a"), ("a", "b"), ("c", "c")}}
        )
        assert derived == {("a",), ("c",)}

    def test_fully_bound_level_is_a_membership_probe(self):
        derived = self.run_full(
            "p(X) :- f(X), e(X, X);",
            {"f": {("a",), ("b",)}, "e": {("a", "a"), ("b", "c")}},
        )
        assert derived == {("a",)}

    def test_checks_run_at_their_scheduled_level(self):
        derived = self.run_full(
            "p(X, Y) :- e(X, Y), NOT f(Y), X <> Y;",
            {"e": {("a", "b"), ("a", "c"), ("d", "d")}, "f": {("c",)}},
        )
        assert derived == {("a", "b")}

    def test_delta_entry_filters_constants_and_duplicates(self):
        node = self.rule_node("p(X) :- e(a, X, X);")
        kernel = compile_kernel(node, node.positive, [[]])
        store = FactStore({"e": {("a", "b", "b")}})
        derived: set = set()
        # Rows that fail the constant, the repeated variable, or the
        # arity are supplied raw (no index filtered them) and must be
        # rejected by the delta entry itself.
        kernel.run_delta(
            store,
            derived,
            [("a", "b", "b"), ("z", "b", "b"), ("a", "b", "c"), ("a", "b")],
        )
        assert derived == {("b",)}

    def test_empty_order_rejected(self):
        node = self.rule_node("p(X) :- e(X, X);")
        with pytest.raises(PlanError, match="empty join order"):
            compile_kernel(node, [], [])


class TestMemosAndSwitches:
    SOURCE = "p(X, Z) :- e(X, Y), f(Y, Z);"
    FACTS = {
        "e": frozenset({("a", "b"), ("b", "c")}),
        "f": frozenset({("b", "d")}),
    }

    def test_kernel_compiled_once_then_hit(self):
        plan = fresh_plan(self.SOURCE)
        with env("REPRO_COMPILED_KERNELS", "1"):
            first = EvalCounters()
            plan.execute(self.FACTS, counters=first)
            assert first.kernels_compiled == 1
            assert first.kernel_hits == 0
            assert first.replans_avoided == 0
            second = EvalCounters()
            plan.execute(self.FACTS, counters=second)
            assert second.kernels_compiled == 0
            assert second.kernel_hits == 1
            assert second.replans_avoided == 1

    def test_order_memo_disabled_by_flag(self):
        plan = fresh_plan(self.SOURCE)
        with env("REPRO_COMPILED_KERNELS", "1"), env("REPRO_ORDER_MEMO", "0"):
            counters = EvalCounters()
            plan.execute(self.FACTS, counters=counters)
            plan.execute(self.FACTS, counters=counters)
            assert counters.replans_avoided == 0
            # The kernel memo is keyed by the order, not the memo flag.
            assert counters.kernels_compiled == 1
            assert counters.kernel_hits == 1

    def test_memo_key_tracks_cardinality_drift(self):
        plan = fresh_plan(self.SOURCE)
        store = FactStore({name: set(rows) for name, rows in self.FACTS.items()})
        counters = EvalCounters()
        plan.execute(store, counters=counters)
        plan.execute(store, counters=counters)
        assert counters.replans_avoided == 1
        # Doubling a body relation changes the signature: a replan, not
        # a (stale) memo hit.
        store.add("e", [("x%d" % i, "y") for i in range(2)])
        plan.execute(store, counters=counters)
        assert counters.replans_avoided == 1

    def test_single_atom_rules_skip_the_memo(self):
        plan = fresh_plan("p(X) :- e(X, X);")
        counters = EvalCounters()
        plan.execute(self.FACTS, counters=counters)
        plan.execute(self.FACTS, counters=counters)
        assert counters.replans_avoided == 0

    def test_kill_switch_selects_the_interpreter(self):
        with env("REPRO_COMPILED_KERNELS", "0"):
            assert not kernels_enabled()
            assert not make_orderer(ORDERING_COST, FactStore({})).kernels
            plan = fresh_plan(self.SOURCE)
            counters = EvalCounters()
            result = plan.execute(self.FACTS, counters=counters)
            assert counters.kernels_compiled == 0
            assert counters.kernel_hits == 0
        assert result["p"] == frozenset({("a", "d")})

    def test_invalid_flag_value_rejected(self):
        with env("REPRO_COMPILED_KERNELS", "maybe"):
            with pytest.raises(PlanError, match="REPRO_COMPILED_KERNELS"):
                kernels_enabled()

    def test_flags_are_sampled_per_orderer(self):
        store = FactStore({})
        with env("REPRO_COMPILED_KERNELS", "0"):
            orderer = make_orderer(ORDERING_COST, store)
        # Flipping the environment after construction is not observed.
        assert not orderer.kernels
        with env("REPRO_COMPILED_KERNELS", "1"):
            assert make_orderer(ORDERING_COST, store).kernels


class TestInterningTypeFidelity:
    """Pools are keyed by (type, value): cross-type equals never conflate."""

    def setup_method(self):
        clear_intern_pools()

    def teardown_method(self):
        clear_intern_pools()

    def test_bool_survives_prior_int_interning(self):
        # The reviewed bug: after the catalog interns int 1, a
        # bool-valued row must not come back as ("widget", 1).
        intern_constant(1)
        row = intern_row(("widget", True))
        assert row[1] is True

    def test_int_survives_prior_bool_interning(self):
        intern_constant(True)
        row = intern_row(("widget", 1))
        assert type(row[1]) is int

    def test_float_survives_prior_int_interning(self):
        intern_constant(10)
        assert repr(intern_constant(10.0)) == "10.0"

    def test_store_add_preserves_value_types(self):
        intern_constant(1)
        store = FactStore()
        store.add("p", [("widget", True)])
        (row,) = store.rows("p")
        assert row[1] is True

    def test_equal_same_typed_rows_share_one_tuple(self):
        a = intern_row(("wid" + "get", 7))
        b = intern_row(("widge" + "t", 7))
        assert a is b

    def test_singletons_and_unhashables_pass_through(self):
        assert intern_constant(None) is None
        assert intern_constant(True) is True
        unhashable = ["not", "hashable"]
        assert intern_constant(unhashable) is unhashable
        assert intern_row(("a", unhashable)) == ("a", unhashable)
