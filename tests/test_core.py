"""Tests for the transducer core: schemas, runs, Spocus, parser, acceptors."""

import pytest

from repro.core import (
    SpocusTransducer,
    TransducerSchema,
    format_run_figure,
    is_accepted,
    is_error_free,
    is_ok_run,
    parse_transducer,
    past,
)
from repro.core.acceptors import error_free_prefix, first_error_step
from repro.core.spocus import ExtendedStateTransducer, derive_state_schema
from repro.errors import SchemaError, SpocusViolation
from repro.relalg import DatabaseSchema, Instance


def make_schema(**kwargs):
    defaults = dict(
        inputs=DatabaseSchema.of(a=1),
        state=DatabaseSchema.of(**{"past-a": 1}),
        outputs=DatabaseSchema.of(out=1),
        database=DatabaseSchema.of(db=1),
        log=("out",),
    )
    defaults.update(kwargs)
    return TransducerSchema(**defaults)


class TestTransducerSchema:
    def test_valid_schema(self):
        schema = make_schema()
        assert schema.logged_outputs() == ("out",)

    def test_overlapping_components_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(outputs=DatabaseSchema.of(a=1))

    def test_log_must_be_input_or_output(self):
        with pytest.raises(SchemaError):
            make_schema(log=("db",))

    def test_full_log_detection(self):
        schema = make_schema(log=("a", "out"))
        assert schema.is_full_log()
        assert not make_schema().is_full_log()

    def test_duplicate_log_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(log=("out", "out"))

    def test_log_schema(self):
        schema = make_schema(log=("a", "out"))
        assert set(schema.log_schema.names) == {"a", "out"}


class TestSpocusValidation:
    def test_state_schema_derived(self):
        schema = derive_state_schema(DatabaseSchema.of(order=1, pay=2))
        assert schema.arity(past("order")) == 1
        assert schema.arity(past("pay")) == 2

    def test_head_must_be_output(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make(
                {"q": 1}, {"p": 1}, rules="q(X) :- q(X);"
            )

    def test_output_in_body_rejected(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make(
                {"q": 1}, {"p": 1, "r": 1}, rules="p(X) :- q(X); r(X) :- p(X);"
            )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make({"q": 1}, {"p": 2}, rules="p(X) :- q(X);")

    def test_unknown_body_relation_rejected(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make({"q": 1}, {"p": 1}, rules="p(X) :- zz(X);")

    def test_unsafe_rule_rejected(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make(
                {"q": 1}, {"p": 1}, rules="p(X) :- q(Y), NOT q(X);"
            )

    def test_cumulative_output_rule_rejected(self):
        with pytest.raises(SpocusViolation):
            SpocusTransducer.make({"q": 1}, {"p": 1}, rules="p(X) +:- q(X);")

    def test_past_relations_usable(self):
        t = SpocusTransducer.make(
            {"q": 1}, {"p": 1}, rules="p(X) :- q(X), NOT past-q(X);"
        )
        run = t.run({}, [{"q": {(1,)}}, {"q": {(1,)}}])
        assert run.outputs[0]["p"] == {(1,)}
        assert run.outputs[1]["p"] == frozenset()


class TestRunSemantics:
    def test_state_accumulates(self, short, catalog_db):
        run = short.run(catalog_db, [{"order": {("time",)}}, {}])
        assert run.states[0][past("order")] == {("time",)}
        assert run.states[1][past("order")] == {("time",)}

    def test_output_sees_previous_state(self, short, catalog_db):
        # Ordering and paying in the same step delivers (past-order is
        # only needed at the *next* step for the bill, but deliver reads
        # past-order which is still empty at step 1).
        run = short.run(
            catalog_db, [{"order": {("time",)}, "pay": {("time", 55)}}]
        )
        assert run.outputs[0]["deliver"] == frozenset()

    def test_log_restriction(self, short, catalog_db):
        run = short.run(catalog_db, [{"order": {("time",)}}])
        entry = run.logs[0]
        assert set(entry.schema.names) == {"sendbill", "pay", "deliver"}
        assert entry["sendbill"] == {("time", 55)}

    def test_empty_run(self, short, catalog_db):
        run = short.run(catalog_db, [])
        assert len(run) == 0

    def test_figure1_trace(self, short, catalog_db, figure1_inputs):
        run = short.run(catalog_db, figure1_inputs)
        assert run.outputs[0]["sendbill"] == {("time", 55)}
        assert run.outputs[1]["deliver"] == {("time",)}
        assert run.outputs[2]["sendbill"] == {("le_monde", 350)}
        assert run.outputs[3]["deliver"] == {("le_monde",)}

    def test_figure2_trace(self, friendly, catalog_db, figure2_inputs):
        run = friendly.run(catalog_db, figure2_inputs)
        assert run.outputs[0]["unavailable"] == {("vogue",)}
        assert run.outputs[1]["rejectpay"] == {("newsweek",)}
        assert run.outputs[2]["alreadypaid"] == {("time",)}
        assert run.outputs[3]["rebill"] == {("newsweek", 45)}

    def test_format_figure(self, short, catalog_db, figure1_inputs):
        text = format_run_figure(short.run(catalog_db, figure1_inputs))
        assert "sendbill(time, 55)" in text
        assert "deliver(le_monde)" in text

    def test_prefix(self, short, catalog_db, figure1_inputs):
        run = short.run(catalog_db, figure1_inputs)
        assert len(run.prefix(2)) == 2


class TestProgramParser:
    def test_short_parses_as_spocus(self):
        from repro.commerce.models import SHORT_SOURCE

        t = parse_transducer(SHORT_SOURCE)
        assert isinstance(t, SpocusTransducer)
        assert set(t.schema.log) == {"sendbill", "pay", "deliver"}

    def test_arity_inference(self):
        t = parse_transducer(
            """
            schema
              input: q;
              output: p;
              log: p;
            state rules
              past-q(X) +:- q(X);
            output rules
              p(X) :- q(X);
            """
        )
        assert t.schema.inputs.arity("q") == 1

    def test_uninferable_arity_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_transducer(
                """
                schema
                  input: q, unused;
                  output: p;
                output rules
                  p(X) :- q(X);
                """
            )

    def test_projection_state_rule_gives_extended(self):
        t = parse_transducer(
            """
            schema
              input: r;
              state: r2;
              output: v;
            state rules
              r2(Y) +:- r(X, Y);
            output rules
              v :- r2(X);
            """
        )
        assert isinstance(t, ExtendedStateTransducer)

    def test_relations_spelling_accepted(self):
        # The paper's `friendly` uses "relations" instead of "schema".
        t = parse_transducer(
            """
            relations
              input: q/1;
              output: p/1;
            output rules
              p(X) :- q(X);
            """
        )
        assert isinstance(t, SpocusTransducer)


class TestExtendedStateTransducer:
    def test_projection_accumulates(self):
        t = ExtendedStateTransducer(
            inputs=DatabaseSchema.of(r=2),
            state=DatabaseSchema.of(r2=1),
            outputs=DatabaseSchema.of(seen=1),
            database=DatabaseSchema(()),
            state_program="r2(Y) +:- r(X, Y);",
            output_program="seen(Y) :- r2(Y);",
        )
        run = t.run({}, [{"r": {(1, 2)}}, {"r": {(3, 4)}}, {}])
        assert run.states[1]["r2"] == {(2,), (4,)}
        assert run.outputs[2]["seen"] == {(2,), (4,)}

    def test_non_cumulative_state_rule_rejected(self):
        with pytest.raises(SchemaError):
            ExtendedStateTransducer(
                inputs=DatabaseSchema.of(r=1),
                state=DatabaseSchema.of(s=1),
                outputs=DatabaseSchema.of(o=1),
                database=DatabaseSchema(()),
                state_program="s(X) :- r(X);",
                output_program="o(X) :- s(X);",
            )


class TestAcceptors:
    def _run_with_outputs(self, outputs):
        from repro.core.run import Run

        schema = DatabaseSchema.of(error=0, ok=0, accept=0)
        instances = tuple(
            Instance(schema, {name: {()} for name in names})
            for names in outputs
        )
        empty = Instance(DatabaseSchema(()))
        return Run(
            empty,
            tuple(empty for _ in outputs),
            tuple(empty for _ in outputs),
            instances,
            tuple(empty for _ in outputs),
        )

    def test_error_free(self):
        run = self._run_with_outputs([set(), {"ok"}])
        assert is_error_free(run)
        bad = self._run_with_outputs([set(), {"error"}])
        assert not is_error_free(bad)
        assert first_error_step(bad) == 1

    def test_ok_run(self):
        assert is_ok_run(self._run_with_outputs([{"ok"}, {"ok"}]))
        assert not is_ok_run(self._run_with_outputs([{"ok"}, set()]))

    def test_accept_run(self):
        assert is_accepted(self._run_with_outputs([set(), {"accept"}]))
        assert not is_accepted(self._run_with_outputs([{"accept"}, set()]))
        assert not is_accepted(self._run_with_outputs([]))

    def test_error_free_prefix(self):
        run = self._run_with_outputs([{"ok"}, {"error"}, {"ok"}])
        assert len(error_free_prefix(run)) == 1
