"""Tests for the FactStore index layer."""

from repro.relalg import FactStore


class TestFactStore:
    def test_rows_and_contains(self):
        store = FactStore({"p": {(1, 2), (3, 4)}})
        assert store.rows("p") == {(1, 2), (3, 4)}
        assert store.contains("p", (1, 2))
        assert not store.contains("p", (2, 1))
        assert store.rows("unknown") == frozenset()

    def test_lookup_builds_index(self):
        store = FactStore({"p": {(1, 2), (1, 3), (2, 3)}})
        assert sorted(store.lookup("p", (0,), (1,))) == [(1, 2), (1, 3)]
        assert list(store.lookup("p", (0,), (9,))) == []
        assert sorted(store.lookup("p", (1,), (3,))) == [(1, 3), (2, 3)]
        assert list(store.lookup("p", (0, 1), (2, 3))) == [(2, 3)]

    def test_add_maintains_existing_indexes(self):
        store = FactStore({"p": {(1, 2)}})
        assert list(store.lookup("p", (0,), (1,))) == [(1, 2)]
        fresh = store.add("p", [(1, 5), (1, 2)])
        assert fresh == {(1, 5)}
        assert sorted(store.lookup("p", (0,), (1,))) == [(1, 2), (1, 5)]

    def test_add_returns_only_new_rows(self):
        store = FactStore({"p": {(1,)}})
        assert store.add("p", [(1,)]) == frozenset()
        assert store.add("p", [(2,)]) == {(2,)}
        assert store.count("p") == 2

    def test_layering_reads_through_to_base(self):
        base = FactStore({"db": {(1,)}})
        top = FactStore({"local": {(2,)}}, base=base)
        assert top.contains("db", (1,))
        assert top.contains("local", (2,))
        assert top.predicates() == {"db", "local"}
        assert list(top.lookup("db", (0,), (1,))) == [(1,)]

    def test_layer_add_copies_on_write(self):
        base = FactStore({"db": {(1,)}})
        top = FactStore(base=base)
        top.add("db", [(2,)])
        assert top.rows("db") == {(1,), (2,)}
        assert base.rows("db") == {(1,)}, "base must never be mutated"

    def test_base_indexes_are_shared(self):
        base = FactStore({"db": {(i, i % 3) for i in range(10)}})
        base.lookup("db", (1,), (0,))
        top = FactStore({"x": {(1,)}}, base=base)
        # The layered store delegates: same bucket object, not a rebuild.
        assert top.lookup("db", (1,), (1,)) is base.lookup("db", (1,), (1,))

    def test_frozen_snapshot_caching(self):
        store = FactStore({"p": {(1,)}})
        first = store.frozen("p")
        assert first == frozenset({(1,)})
        assert store.frozen("p") is first
        store.add("p", [(2,)])
        assert store.frozen("p") == {(1,), (2,)}

    def test_as_dict_covers_all_layers(self):
        base = FactStore({"db": {(1,)}})
        top = FactStore({"x": {(2,)}}, base=base)
        top.ensure("y")
        assert top.as_dict() == {
            "db": frozenset({(1,)}),
            "x": frozenset({(2,)}),
            "y": frozenset(),
        }

    def test_ensure_does_not_shadow_base(self):
        base = FactStore({"db": {(1,)}})
        top = FactStore(base=base)
        top.ensure("db")
        assert top.rows("db") == {(1,)}

    def test_lookup_skips_rows_shorter_than_pattern(self):
        # Mixed-arity facts: rows too short for the indexed positions
        # are skipped, matching the naive scan path's arity guard.
        store = FactStore({"q": {(1,), (2, 5)}})
        assert list(store.lookup("q", (1,), (5,))) == [(2, 5)]
        fresh = store.add("q", [(3,), (4, 5)])
        assert fresh == {(3,), (4, 5)}
        assert sorted(store.lookup("q", (1,), (5,))) == [(2, 5), (4, 5)]

    def test_repr_sorted(self):
        store = FactStore({"b": {(1,)}, "a": {(1,), (2,)}})
        assert repr(store) == "FactStore(a(2), b(1))"
