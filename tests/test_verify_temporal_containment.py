"""Tests for Theorem 3.3 (temporal), 3.5/Cor 3.6 (containment), Thm 4.1/4.4/4.6."""

import pytest

from repro.datalog.ast import Variable as V
from repro.datalog.parser import parse_program
from repro.errors import UndecidableError, VerificationError
from repro.logic.fol import Bottom, Forall, Implies, Rel, conjoin
from repro.verify import (
    TsdiConjunct,
    TsdiSentence,
    compile_tsdi,
    enforce_tsdi,
    errorfree_contains,
    holds_on_all_runs,
    holds_on_error_free_runs,
    log_contains,
    satisfies_tsdi,
)
from repro.verify.containment import are_log_equivalent, pointwise_log_equal
from repro.verify.temporal import check_run_satisfies

x, y = V("x"), V("y")

NO_DELIVERY_BEFORE_PAY = Forall(
    (x, y),
    Implies(
        conjoin([Rel("deliver", (x,)), Rel("price", (x, y))]),
        Rel("past-pay", (x, y)),
    ),
)


class TestTemporal:
    def test_paper_property_holds_for_short(self, short, catalog_db):
        assert holds_on_all_runs(short, NO_DELIVERY_BEFORE_PAY, catalog_db).holds

    def test_paper_property_holds_for_friendly(self, friendly, catalog_db):
        assert holds_on_all_runs(
            friendly, NO_DELIVERY_BEFORE_PAY, catalog_db
        ).holds

    def test_buggy_store_violates(self, buggy, catalog_db):
        verdict = holds_on_all_runs(buggy, NO_DELIVERY_BEFORE_PAY, catalog_db)
        assert not verdict.holds
        assert verdict.counterexample_inputs is not None

    def test_counterexample_replays(self, buggy, catalog_db):
        verdict = holds_on_all_runs(buggy, NO_DELIVERY_BEFORE_PAY, catalog_db)
        run = buggy.run(catalog_db, verdict.counterexample_inputs)
        assert not check_run_satisfies(
            buggy, run, NO_DELIVERY_BEFORE_PAY, catalog_db
        )

    def test_schema_level_fails_with_nonfunctional_price(self, short):
        # Over all databases the property fails: with two prices for the
        # same product, paying one of them delivers while the other
        # remains unpaid.  The BSR countermodel finds this.
        verdict = holds_on_all_runs(short, NO_DELIVERY_BEFORE_PAY, None)
        assert not verdict.holds

    def test_output_only_property(self, short, catalog_db):
        # sendbill always quotes a catalog price.
        prop = Forall(
            (x, y),
            Implies(Rel("sendbill", (x, y)), Rel("price", (x, y))),
        )
        assert holds_on_all_runs(short, prop, catalog_db).holds

    def test_false_output_property_detected(self, short, catalog_db):
        prop = Forall((x,), Implies(Rel("deliver", (x,)), Bottom()))
        assert not holds_on_all_runs(short, prop, catalog_db).holds

    def test_unknown_relation_rejected(self, short, catalog_db):
        prop = Forall((x,), Rel("nonexistent", (x,)))
        with pytest.raises(VerificationError):
            holds_on_all_runs(short, prop, catalog_db)

    def test_operational_checker_agrees(
        self, short, catalog_db, figure1_inputs
    ):
        run = short.run(catalog_db, figure1_inputs)
        assert check_run_satisfies(
            short, run, NO_DELIVERY_BEFORE_PAY, catalog_db
        )


class TestContainment:
    def test_short_friendly_pointwise_equal(self, short, friendly, catalog_db):
        # The paper: "short and friendly yield exactly the same set of
        # valid logs."
        assert pointwise_log_equal(short, friendly, catalog_db).contained

    def test_pointwise_difference_detected(self, short, catalog_db):
        # A variant whose deliver rule drops the payment check logs
        # deliveries short never logs.
        from repro.commerce.models import build_buggy_store

        buggy = build_buggy_store()
        verdict = pointwise_log_equal(short, buggy, catalog_db)
        assert not verdict.contained
        assert verdict.difference is not None

    def test_theorem35_requires_full_log(self, short, friendly, catalog_db):
        # short's log misses the input `order`, so the Theorem 3.5
        # hypothesis fails and the library refuses.
        with pytest.raises(VerificationError):
            log_contains(short, friendly, catalog_db)

    def test_full_log_containment(self, catalog_db):
        from repro.core.spocus import SpocusTransducer

        base = SpocusTransducer.make(
            {"order": 1, "pay": 2},
            {"sendbill": 2, "deliver": 1},
            {"price": 2, "available": 1},
            """
            sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
            deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
            """,
            log=("order", "pay", "sendbill", "deliver"),
        )
        extended = base.with_extra_rules(
            "unavailable(X) :- order(X), NOT available(X);",
            extra_inputs={"hint": 1},
            extra_outputs={"unavailable": 1},
        )
        verdict = log_contains(base, extended, catalog_db)
        assert verdict.contained

    def test_full_log_equivalence(self, catalog_db):
        from repro.core.spocus import SpocusTransducer

        kwargs = dict(
            inputs={"order": 1, "pay": 2},
            outputs={"sendbill": 2},
            database={"price": 2, "available": 1},
            log=("order", "pay", "sendbill"),
        )
        one = SpocusTransducer.make(
            rules="sendbill(X,Y) :- order(X), price(X,Y);", **kwargs
        )
        # Logically equal rule set, different formulation.
        two = SpocusTransducer.make(
            rules="""
            sendbill(X,Y) :- order(X), price(X,Y), available(X);
            sendbill(X,Y) :- order(X), price(X,Y), NOT available(X);
            """,
            **kwargs,
        )
        assert are_log_equivalent(one, two, catalog_db)

    def test_restriction_is_contained_not_equal(self, catalog_db):
        from repro.core.spocus import SpocusTransducer

        base = SpocusTransducer.make(
            {"order": 1},
            {"sendbill": 2},
            {"price": 2, "available": 1},
            "sendbill(X,Y) :- order(X), price(X,Y);",
            log=("order", "sendbill"),
        )
        restricted = SpocusTransducer.make(
            {"order": 1},
            {"sendbill": 2},
            {"price": 2, "available": 1},
            "sendbill(X,Y) :- order(X), price(X,Y), available(X);",
            log=("order", "sendbill"),
        )
        # Different pointwise logs exist once a priced product is
        # unavailable (the default catalog has everything in stock, so
        # the two would genuinely coincide there).
        db = {"price": {("time", 55), ("rare", 9)}, "available": {("time",)}}
        assert not are_log_equivalent(base, restricted, db)
        # On an all-available catalog they really are equivalent.
        assert are_log_equivalent(base, restricted, catalog_db)


class TestTsdi:
    def _payment_discipline(self):
        return TsdiSentence.of(
            TsdiConjunct.parse("pay(X,Y)", "price(X,Y), past-order(X)")
        )

    def test_compile_emits_error_rules(self):
        rules = compile_tsdi(self._payment_discipline())
        assert len(rules) == 2  # one per CNF conjunct of the consequent
        assert all(r.head.predicate == "error" for r in rules)

    def test_enforced_transducer_flags_violations(self, short, catalog_db):
        guarded = enforce_tsdi(short, self._payment_discipline())
        from repro.core.acceptors import is_error_free

        bad = guarded.run(catalog_db, [{"pay": {("time", 55)}}])
        assert not is_error_free(bad)
        good = guarded.run(
            catalog_db, [{"order": {("time",)}}, {"pay": {("time", 55)}}]
        )
        assert is_error_free(good)

    def test_theorem41_equivalence_on_samples(self, short, catalog_db):
        # Error-free runs == runs whose inputs satisfy the sentence.
        from repro.core.acceptors import is_error_free

        sentence = self._payment_discipline()
        guarded = enforce_tsdi(short, sentence)
        samples = [
            [{"order": {("time",)}}, {"pay": {("time", 55)}}],
            [{"pay": {("time", 55)}}],
            [{"order": {("vogue",)}}, {"pay": {("vogue", 1)}}],
            [{"order": {("time",)}}, {"pay": {("time", 99)}}],
            [{}],
        ]
        for inputs in samples:
            run = guarded.run(catalog_db, inputs)
            assert is_error_free(run) == satisfies_tsdi(
                guarded, run, sentence, catalog_db
            )

    def test_disjunctive_consequent(self, catalog_db, short):
        sentence = TsdiSentence.of(
            TsdiConjunct.parse(
                "past-order(X), price(X,Y), NOT past-pay(X,Y)",
                "pay(X,Y) | cancel(X)",
            )
        )
        rules = compile_tsdi(sentence)
        assert len(rules) == 1
        # NOT pay / NOT cancel from the consequent clause, plus the
        # antecedent's own NOT past-pay.
        negated = {a.predicate for a in rules[0].negated_atoms()}
        assert negated == {"pay", "cancel", "past-pay"}

    def test_unsafe_antecedent_rejected(self):
        with pytest.raises(VerificationError):
            TsdiConjunct.parse("NOT pay(X,Y)", "price(X,Y)")

    def test_negative_consequent_rejected(self):
        with pytest.raises(VerificationError):
            TsdiConjunct.parse("pay(X,Y)", "NOT price(X,Y)")


class TestErrorFree:
    def _guarded(self, short):
        return short.with_extra_rules(
            "error :- pay(X,Y), past-cancel(X);",
            extra_inputs={"cancel": 1},
            extra_outputs={"error": 0},
        )

    def test_enforced_property_holds(self, short, catalog_db):
        guarded = self._guarded(short)
        sentence = TsdiSentence.of(
            TsdiConjunct(
                parse_program("__h :- pay(X,Y), past-cancel(X)").rules[0].body,
                Bottom(),
            )
        )
        assert holds_on_error_free_runs(guarded, sentence, catalog_db).holds

    def test_unenforced_property_fails_with_witness(self, short, catalog_db):
        guarded = self._guarded(short)
        sentence = TsdiSentence.of(
            TsdiConjunct.parse("order(X)", "available(X)")
        )
        verdict = holds_on_error_free_runs(guarded, sentence, catalog_db)
        assert not verdict.holds
        assert verdict.counterexample_inputs is not None

    def test_negative_state_error_rules_rejected(self, short, catalog_db):
        guarded = short.with_extra_rules(
            "error :- pay(X,Y), NOT past-order(X);",
            extra_outputs={"error": 0},
        )
        sentence = TsdiSentence.of(
            TsdiConjunct.parse("order(X)", "available(X)")
        )
        with pytest.raises(UndecidableError):
            holds_on_error_free_runs(guarded, sentence, catalog_db)

    def test_errorfree_containment(self, short, catalog_db):
        lenient = self._guarded(short)
        strict = short.with_extra_rules(
            """
            error :- pay(X,Y), past-cancel(X);
            error :- pay(X,Y), past-pay(X,Y);
            """,
            extra_inputs={"cancel": 1},
            extra_outputs={"error": 0},
        )
        assert errorfree_contains(strict, lenient, catalog_db).contained
        verdict = errorfree_contains(lenient, strict, catalog_db)
        assert not verdict.contained
        assert verdict.firing_rule is not None

    def test_containment_requires_same_inputs(self, short, catalog_db):
        lenient = self._guarded(short)
        with pytest.raises(VerificationError):
            errorfree_contains(short, lenient, catalog_db)

    def test_separating_run_replays(self, short, catalog_db):
        from repro.core.acceptors import is_error_free

        lenient = self._guarded(short)
        strict = short.with_extra_rules(
            """
            error :- pay(X,Y), past-cancel(X);
            error :- pay(X,Y), past-pay(X,Y);
            """,
            extra_inputs={"cancel": 1},
            extra_outputs={"error": 0},
        )
        verdict = errorfree_contains(lenient, strict, catalog_db)
        witness = verdict.separating_inputs
        assert is_error_free(lenient.run(catalog_db, witness))
        assert not is_error_free(strict.run(catalog_db, witness))
