"""CI-reproducibility: outputs must not depend on the hash seed.

Frozensets iterate in hash order, which varies with PYTHONHASHSEED.
Everything user-visible (figure rendering, logs, verification
witnesses, benchmark records) must therefore be sorted before it is
emitted.  These tests run the same small workload in subprocesses with
different hash seeds and require byte-identical output.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

SCRIPT = """
import json
from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import build_short, default_database, FIGURE1_INPUTS
from repro.commerce.workloads import random_log
from repro.core.run import format_log, format_run_figure
from repro.verify import is_valid_log

short = build_short()
run = short.run(default_database(), FIGURE1_INPUTS)
print(format_run_figure(run, title="fig1"))

catalog = CatalogGenerator(seed=5).generate(8)
run, logs = random_log(short, catalog, 6, seed=3)
print(format_log(logs))

result = is_valid_log(short, catalog.as_database(), logs[:3])
print("valid:", result.valid)
if result.witness_inputs is not None:
    for step in result.witness_inputs:
        print(repr(step))
"""


def _run(hash_seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env={
            "PYTHONPATH": SRC,
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
        },
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_output_is_hash_seed_independent():
    outputs = {_run(seed) for seed in ("0", "1", "42")}
    assert len(outputs) == 1, "output differs across PYTHONHASHSEED values"
